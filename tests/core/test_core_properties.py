"""Property-based tests for the hybrid heuristic's defining invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.critical import CriticalSubtaskSelector
from repro.core.hybrid import HybridPrefetchHeuristic
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.prefetch_list import ListPrefetchScheduler

#: Instances small enough for the exact design-time engine.  The critical
#: subtask selection runs one branch-and-bound search per candidate subset,
#: and the search is exponential in the number of *independent* loads, so
#: the subtask count is capped where sparse DAGs stay tractable.
instance_params = st.tuples(
    st.integers(min_value=1, max_value=7),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=4000),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.5, max_value=6.0),
)


def build_placed(params):
    count, probability, seed, tiles, latency = params
    graph = random_dag("hyb", count=count, edge_probability=probability,
                       time_model=ExecutionTimeModel(minimum=0.5, maximum=25.0),
                       seed=seed)
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return placed, latency


@settings(max_examples=40, deadline=None)
@given(params=instance_params)
def test_critical_subset_property(params):
    """Reusing the CS subset always hides every remaining load."""
    placed, latency = build_placed(params)
    selector = CriticalSubtaskSelector()
    result = selector.select(placed, latency)
    assert result.schedule.overhead <= 1e-6
    assert set(result.critical) <= set(placed.drhw_names)


@settings(max_examples=40, deadline=None)
@given(params=instance_params)
def test_critical_subset_property_with_heuristic_engine(params):
    """The property also holds when the list heuristic is the engine."""
    placed, latency = build_placed(params)
    selector = CriticalSubtaskSelector(
        scheduler=ListPrefetchScheduler("ideal-start")
    )
    result = selector.select(placed, latency)
    assert result.schedule.overhead <= 1e-6


@settings(max_examples=30, deadline=None)
@given(params=instance_params)
def test_hybrid_overhead_is_initialization_only(params):
    """Without reuse the hybrid overhead equals the initialization phase."""
    placed, latency = build_placed(params)
    heuristic = HybridPrefetchHeuristic(latency)
    entry = heuristic.design_time(placed, "prop")
    execution = heuristic.run_time(entry, reusable=())
    expected = len(entry.critical_subtasks) * latency
    assert execution.overhead == pytest.approx(expected, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(params=instance_params)
def test_hybrid_with_full_critical_reuse_is_overhead_free(params):
    placed, latency = build_placed(params)
    heuristic = HybridPrefetchHeuristic(latency)
    entry = heuristic.design_time(placed, "prop")
    execution = heuristic.run_time(entry, reusable=entry.critical_subtasks)
    assert execution.overhead <= 1e-6


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(params=instance_params, subset_seed=st.integers(0, 999))
def test_hybrid_overhead_bounded_by_missing_critical_loads(params, subset_seed):
    """For any reuse state, overhead <= (# missing critical subtasks) * latency."""
    import random

    placed, latency = build_placed(params)
    heuristic = HybridPrefetchHeuristic(latency)
    entry = heuristic.design_time(placed, "prop")
    drhw = list(placed.drhw_names)
    rng = random.Random(subset_seed)
    reusable = [name for name in drhw if rng.random() < 0.5]
    execution = heuristic.run_time(entry, reusable=reusable)
    missing = [name for name in entry.critical_subtasks
               if name not in set(reusable)]
    assert execution.overhead <= len(missing) * latency + 1e-6
