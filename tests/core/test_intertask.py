"""Unit tests for the inter-task prefetch planner."""

import pytest

from repro.core.intertask import (
    PrefetchRequest,
    TileWindow,
    plan_intertask_prefetch,
)
from repro.errors import SchedulingError

LATENCY = 4.0


def requests(*names):
    return [PrefetchRequest(subtask=name, configuration=name) for name in names]


def windows(*specs):
    return [TileWindow(tile=index, available_from=available,
                       resident_configuration=resident)
            for index, (available, resident) in enumerate(specs)]


class TestPlanning:
    def test_single_load_fits_in_tail(self):
        plan = plan_intertask_prefetch(
            requests("a"), windows((10.0, None)),
            controller_free=10.0, task_finish=20.0,
            reconfiguration_latency=LATENCY,
        )
        assert len(plan.loads) == 1
        load = plan.loads[0]
        assert load.start == pytest.approx(10.0)
        assert load.finish == pytest.approx(14.0)
        assert plan.controller_free == pytest.approx(14.0)

    def test_loads_are_sequential_on_the_port(self):
        plan = plan_intertask_prefetch(
            requests("a", "b", "c"),
            windows((0.0, None), (0.0, None), (0.0, None)),
            controller_free=0.0, task_finish=100.0,
            reconfiguration_latency=LATENCY,
        )
        assert [load.start for load in plan.loads] == [0.0, 4.0, 8.0]
        assert len({load.tile for load in plan.loads}) == 3

    def test_no_idle_window_plans_nothing(self):
        plan = plan_intertask_prefetch(
            requests("a"), windows((0.0, None)),
            controller_free=50.0, task_finish=40.0,
            reconfiguration_latency=LATENCY,
        )
        assert plan.loads == ()
        assert plan.controller_free == pytest.approx(50.0)

    def test_loads_must_start_before_task_finish(self):
        plan = plan_intertask_prefetch(
            requests("a", "b"), windows((0.0, None), (0.0, None)),
            controller_free=0.0, task_finish=5.0,
            reconfiguration_latency=LATENCY,
        )
        # Second load would start at 4.0 < 5.0, so both are planned with
        # overrun allowed by default.
        assert len(plan.loads) == 2

    def test_overrun_disallowed(self):
        plan = plan_intertask_prefetch(
            requests("a", "b"), windows((0.0, None), (0.0, None)),
            controller_free=0.0, task_finish=5.0,
            reconfiguration_latency=LATENCY, allow_overrun=False,
        )
        assert len(plan.loads) == 1

    def test_already_resident_requests_skipped(self):
        plan = plan_intertask_prefetch(
            requests("a", "b"),
            windows((0.0, "a"), (0.0, None)),
            controller_free=0.0, task_finish=50.0,
            reconfiguration_latency=LATENCY,
        )
        assert plan.prefetched_configurations == ("b",)

    def test_duplicate_configurations_loaded_once(self):
        duplicated = [PrefetchRequest("x1", "shared"),
                      PrefetchRequest("x2", "shared")]
        plan = plan_intertask_prefetch(
            duplicated, windows((0.0, None), (0.0, None)),
            controller_free=0.0, task_finish=50.0,
            reconfiguration_latency=LATENCY,
        )
        assert len(plan.loads) == 1

    def test_tile_available_later_than_controller(self):
        plan = plan_intertask_prefetch(
            requests("a"), windows((30.0, None)),
            controller_free=10.0, task_finish=40.0,
            reconfiguration_latency=LATENCY,
        )
        assert plan.loads[0].start == pytest.approx(30.0)

    def test_more_requests_than_tiles(self):
        plan = plan_intertask_prefetch(
            requests("a", "b", "c"), windows((0.0, None)),
            controller_free=0.0, task_finish=100.0,
            reconfiguration_latency=LATENCY,
        )
        assert len(plan.loads) == 1

    def test_priority_order_respected(self):
        plan = plan_intertask_prefetch(
            requests("low_priority_last", "high"),
            windows((0.0, None)),
            controller_free=0.0, task_finish=100.0,
            reconfiguration_latency=LATENCY,
        )
        assert plan.loads[0].subtask == "low_priority_last"

    def test_negative_latency_rejected(self):
        with pytest.raises(SchedulingError):
            plan_intertask_prefetch(requests("a"), windows((0.0, None)),
                                    controller_free=0.0, task_finish=10.0,
                                    reconfiguration_latency=-1.0)

    def test_empty_requests(self):
        plan = plan_intertask_prefetch([], windows((0.0, None)),
                                       controller_free=0.0, task_finish=10.0,
                                       reconfiguration_latency=LATENCY)
        assert plan.loads == ()
