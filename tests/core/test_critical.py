"""Unit tests for the critical-subtask selection (design-time phase)."""

import pytest

from repro.core.critical import (
    CriticalSubtaskSelector,
    PICK_STRATEGIES,
    select_critical_subtasks,
)
from repro.errors import SchedulingError
from repro.graphs.analysis import subtask_weights
from repro.graphs.taskgraph import chain_graph
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.prefetch_list import ListPrefetchScheduler

LATENCY = 4.0


def _placed(graph, tiles=8):
    return build_initial_schedule(graph, Platform(tile_count=tiles))


class TestDefiningProperty:
    def test_cs_property_on_benchmarks(self, benchmark_graphs):
        """Reusing exactly the CS subset yields zero overhead (the definition)."""
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = select_critical_subtasks(placed, LATENCY)
            assert result.schedule.overhead == pytest.approx(0.0, abs=1e-6)
            assert set(result.schedule.problem.reused) == set(result.critical)

    def test_cs_subset_only_contains_drhw_subtasks(self, mixed_graph):
        placed = _placed(mixed_graph)
        result = select_critical_subtasks(placed, LATENCY)
        assert set(result.critical) <= set(placed.drhw_names)

    def test_chain_has_single_critical_subtask(self, chain4):
        placed = _placed(chain4)
        result = select_critical_subtasks(placed, LATENCY)
        assert result.critical == ("s0",)
        assert result.critical_fraction == pytest.approx(0.25)

    def test_zero_latency_means_no_critical_subtasks(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = select_critical_subtasks(placed, 0.0)
            assert result.critical == ()

    def test_huge_latency_makes_everything_critical(self, diamond):
        placed = _placed(diamond)
        result = select_critical_subtasks(placed, 1000.0)
        assert set(result.critical) == set(diamond.subtask_names)

    def test_greedy_minimality_on_chain(self, chain4):
        """Removing the selected CS member reintroduces a penalty."""
        placed = _placed(chain4)
        result = select_critical_subtasks(placed, LATENCY)
        problem = PrefetchProblem(placed, LATENCY, reused=frozenset())
        from repro.scheduling.prefetch_bb import OptimalPrefetchScheduler
        without = OptimalPrefetchScheduler().schedule(problem)
        assert without.overhead > 0


class TestSelectionLoop:
    def test_steps_recorded(self, chain4):
        placed = _placed(chain4)
        result = select_critical_subtasks(placed, LATENCY)
        assert result.iterations == len(result.steps)
        # Final step has zero overhead and no selection.
        assert result.steps[-1].selected is None
        assert result.steps[-1].overhead == pytest.approx(0.0, abs=1e-6)
        # Every earlier step selected the heaviest delay generator.
        weights = subtask_weights(chain4)
        for step in result.steps[:-1]:
            assert step.selected is not None
            if step.delay_generators:
                heaviest = max(step.delay_generators, key=weights.get)
                assert weights[step.selected] >= weights[heaviest] - 1e-9

    def test_overhead_decreases_monotonically(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = select_critical_subtasks(placed, LATENCY)
            overheads = [step.overhead for step in result.steps]
            assert all(later <= earlier + 1e-9
                       for earlier, later in zip(overheads, overheads[1:]))

    def test_load_order_is_weight_sorted(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = select_critical_subtasks(placed, LATENCY)
            weights = result.weights
            order_weights = [weights[name] for name in result.load_order]
            assert order_weights == sorted(order_weights, reverse=True)
            assert set(result.load_order) == set(result.critical)

    def test_non_critical_loads_is_complement(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = select_critical_subtasks(placed, LATENCY)
            expected = set(placed.drhw_names) - set(result.critical)
            assert set(result.non_critical_loads) == expected

    def test_heuristic_engine_also_terminates(self, benchmark_graphs):
        selector = CriticalSubtaskSelector(
            scheduler=ListPrefetchScheduler("ideal-start")
        )
        for graph in benchmark_graphs:
            placed = _placed(graph)
            result = selector.select(placed, LATENCY)
            assert result.schedule.overhead == pytest.approx(0.0, abs=1e-6)

    def test_tile_sharing_increases_critical_count(self, chain4):
        spread = select_critical_subtasks(_placed(chain4, tiles=8), LATENCY)
        packed = select_critical_subtasks(_placed(chain4, tiles=1), LATENCY)
        assert len(packed.critical) >= len(spread.critical)


class TestPickStrategies:
    def test_all_strategies_satisfy_cs_property(self, diamond):
        placed = _placed(diamond)
        for strategy in PICK_STRATEGIES:
            selector = CriticalSubtaskSelector(pick=strategy)
            result = selector.select(placed, LATENCY)
            assert result.schedule.overhead == pytest.approx(0.0, abs=1e-6)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SchedulingError):
            CriticalSubtaskSelector(pick="bogus")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(SchedulingError):
            CriticalSubtaskSelector(penalty_tolerance=-1.0)

    def test_max_weight_never_larger_than_alternatives(self, benchmark_graphs):
        """The paper's max-weight pick produces CS subsets no larger than the
        ablation strategies on the benchmark set (in aggregate)."""
        totals = {}
        for strategy in PICK_STRATEGIES:
            selector = CriticalSubtaskSelector(pick=strategy)
            totals[strategy] = sum(
                len(selector.select(_placed(graph), LATENCY).critical)
                for graph in benchmark_graphs
            )
        assert totals["max-weight"] <= min(totals.values()) + 1
