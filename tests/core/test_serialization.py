"""Unit tests for design-time store (de)serialization."""

import json

import pytest

from repro.core.hybrid import HybridPrefetchHeuristic
from repro.core.serialization import (
    STORE_VERSION,
    entry_from_dict,
    entry_to_dict,
    load_store,
    placed_schedule_from_dict,
    placed_schedule_to_dict,
    save_store,
    store_from_dict,
    store_from_json,
    store_to_dict,
    store_to_json,
)
from repro.errors import ConfigurationError
from repro.scheduling.list_scheduler import build_initial_schedule

LATENCY = 4.0


@pytest.fixture
def store(benchmark_graphs, platform8):
    heuristic = HybridPrefetchHeuristic(LATENCY)
    return heuristic.build_store(
        (graph.name, "default", "tiles8",
         build_initial_schedule(graph, platform8))
        for graph in benchmark_graphs
    )


class TestPlacedScheduleRoundTrip:
    def test_roundtrip(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        rebuilt = placed_schedule_from_dict(placed_schedule_to_dict(placed))
        assert rebuilt.makespan == pytest.approx(placed.makespan)
        for name in diamond.subtask_names:
            assert rebuilt.ideal_start(name) == pytest.approx(
                placed.ideal_start(name)
            )
            assert rebuilt.resource_of(name) == placed.resource_of(name)

    def test_malformed_payload(self):
        with pytest.raises(ConfigurationError):
            placed_schedule_from_dict({"graph": {"name": "x", "subtasks": []}})


class TestEntryRoundTrip:
    def test_entry_roundtrip_preserves_runtime_inputs(self, store):
        for entry in store:
            rebuilt = entry_from_dict(entry_to_dict(entry))
            assert rebuilt.key == entry.key
            assert rebuilt.critical_subtasks == entry.critical_subtasks
            assert rebuilt.non_critical_loads == entry.non_critical_loads
            assert rebuilt.ideal_makespan == pytest.approx(entry.ideal_makespan)
            assert rebuilt.weights == pytest.approx(entry.weights)

    def test_rebuilt_entry_drives_identical_runtime_phase(self, store):
        heuristic = HybridPrefetchHeuristic(LATENCY)
        for entry in store:
            rebuilt = entry_from_dict(entry_to_dict(entry))
            original = heuristic.run_time(entry, reusable=())
            restored = heuristic.run_time(rebuilt, reusable=())
            assert restored.overhead == pytest.approx(original.overhead)
            assert restored.load_count == original.load_count

    def test_corrupted_latency_detected(self, store):
        entry = next(iter(store))
        payload = entry_to_dict(entry)
        # Claiming a much larger latency makes the stored schedule invalid.
        payload["reconfiguration_latency"] = 1000.0
        with pytest.raises(ConfigurationError, match="not overhead-free"):
            entry_from_dict(payload)

    def test_missing_field_detected(self, store):
        payload = entry_to_dict(next(iter(store)))
        del payload["critical"]
        with pytest.raises(ConfigurationError):
            entry_from_dict(payload)


class TestStoreRoundTrip:
    def test_dict_roundtrip(self, store):
        rebuilt = store_from_dict(store_to_dict(store))
        assert len(rebuilt) == len(store)
        assert rebuilt.keys == store.keys
        assert rebuilt.critical_fraction() == pytest.approx(
            store.critical_fraction()
        )

    def test_json_roundtrip(self, store):
        rebuilt = store_from_json(store_to_json(store))
        assert rebuilt.keys == store.keys

    def test_file_roundtrip(self, tmp_path, store):
        path = save_store(store, tmp_path / "store.json")
        assert path.exists()
        rebuilt = load_store(path)
        assert rebuilt.keys == store.keys

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_store(tmp_path / "nope.json")

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError):
            store_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, store):
        payload = store_to_dict(store)
        payload["version"] = STORE_VERSION + 1
        with pytest.raises(ConfigurationError):
            store_from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            store_from_json("{broken")

    def test_json_is_plain_data(self, store):
        payload = json.loads(store_to_json(store))
        assert payload["format"] == "repro-design-store"
        assert isinstance(payload["entries"], list)
