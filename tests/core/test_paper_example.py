"""Integration test reproducing the illustrative example of Figures 3 and 5.

The paper's running example is a four-subtask graph (1 feeds 2 and 3, which
feed 4) mapped onto three DRHW tiles:

* without any technique, every load delays the system (Figure 3b);
* with configuration prefetching, only the first load penalizes the
  execution (Figure 3c);
* with the hybrid flow (Figure 5), subtask 1 is the only critical subtask;
  if it can be reused the initialization phase disappears, reusable
  non-critical loads are simply cancelled, and the final idle period of the
  reconfiguration circuitry can prefetch a critical subtask of the next
  task.
"""

import pytest

from repro.core.critical import select_critical_subtasks
from repro.core.hybrid import HybridPrefetchHeuristic
from repro.core.intertask import PrefetchRequest, TileWindow, plan_intertask_prefetch
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.noprefetch import OnDemandScheduler
from repro.scheduling.prefetch_bb import OptimalPrefetchScheduler

LATENCY = 4.0


@pytest.fixture
def placed(paper_example):
    platform = Platform(tile_count=3, reconfiguration_latency=LATENCY)
    return build_initial_schedule(paper_example, platform)


class TestFigure3:
    def test_schedule_a_without_overhead(self, placed):
        assert placed.makespan == pytest.approx(12.0 + 14.0 + 10.0)

    def test_schedule_b_without_prefetch_every_load_delays(self, placed):
        problem = PrefetchProblem(placed, LATENCY)
        result = OnDemandScheduler().schedule(problem)
        assert result.overhead > LATENCY
        assert result.hidden_load_fraction < 1.0

    def test_schedule_c_with_prefetch_only_first_load_delays(self, placed):
        problem = PrefetchProblem(placed, LATENCY)
        result = OptimalPrefetchScheduler().schedule(problem)
        assert result.overhead == pytest.approx(LATENCY)
        # Exactly one load is exposed: the one of the first subtask.
        exposed = result.delay_generating_subtasks()
        assert list(exposed) == ["t1"]

    def test_prefetch_beats_no_prefetch(self, placed):
        problem = PrefetchProblem(placed, LATENCY)
        assert OptimalPrefetchScheduler().schedule(problem).makespan < \
            OnDemandScheduler().schedule(problem).makespan


class TestFigure5:
    def test_only_subtask1_is_critical(self, placed):
        result = select_critical_subtasks(placed, LATENCY)
        assert result.critical == ("t1",)

    def test_hybrid_without_reuse_pays_one_load(self, placed):
        heuristic = HybridPrefetchHeuristic(LATENCY)
        entry = heuristic.design_time(placed, "example")
        execution = heuristic.run_time(entry, reusable=())
        assert execution.overhead == pytest.approx(LATENCY)
        assert execution.decision.initialization_loads == ("t1",)

    def test_hybrid_with_subtask1_reused_has_no_overhead(self, placed):
        heuristic = HybridPrefetchHeuristic(LATENCY)
        entry = heuristic.design_time(placed, "example")
        execution = heuristic.run_time(entry, reusable=["t1"])
        assert execution.overhead == pytest.approx(0.0, abs=1e-9)
        assert execution.decision.initialization_count == 0

    def test_reusable_noncritical_load_is_cancelled(self, placed):
        heuristic = HybridPrefetchHeuristic(LATENCY)
        entry = heuristic.design_time(placed, "example")
        execution = heuristic.run_time(entry, reusable=["t1", "t3"])
        assert "t3" in execution.decision.cancelled_loads
        assert execution.load_count == len(placed.drhw_names) - 2

    def test_idle_tail_can_prefetch_next_task_critical_subtask(self, placed):
        heuristic = HybridPrefetchHeuristic(LATENCY)
        entry = heuristic.design_time(placed, "example")
        execution = heuristic.run_time(entry, reusable=["t1"])
        # The reconfiguration circuitry is idle at the end of the task
        # (Figure 5, slot b.3): there is room to load subtask 5 of the
        # subsequent task.
        assert execution.idle_tail >= LATENCY
        plan = plan_intertask_prefetch(
            [PrefetchRequest(subtask="t5", configuration="t5")],
            [TileWindow(tile=0, available_from=execution.makespan - 10.0)],
            controller_free=execution.controller_free,
            task_finish=execution.makespan,
            reconfiguration_latency=LATENCY,
        )
        assert plan.prefetched_subtasks == ("t5",)
        assert plan.loads[0].finish <= execution.makespan + LATENCY
