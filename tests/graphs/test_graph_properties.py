"""Property-based tests (hypothesis) for the graph layer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import (
    alap_times,
    asap_times,
    critical_path,
    slack,
    subtask_weights,
)
from repro.graphs.generators import ExecutionTimeModel, layered_dag, random_dag
from repro.graphs.serialization import graph_from_dict, graph_to_dict
from repro.graphs.validation import validate_graph

#: Strategy producing (count, edge probability, seed) triples for random DAGs.
dag_params = st.tuples(
    st.integers(min_value=1, max_value=18),
    st.floats(min_value=0.0, max_value=0.8),
    st.integers(min_value=0, max_value=10_000),
)

time_models = st.tuples(
    st.floats(min_value=0.2, max_value=5.0),
    st.floats(min_value=5.0, max_value=40.0),
).map(lambda pair: ExecutionTimeModel(minimum=pair[0], maximum=pair[1]))


def build_dag(params, time_model=None):
    count, probability, seed = params
    return random_dag("prop", count=count, edge_probability=probability,
                      time_model=time_model or ExecutionTimeModel(),
                      seed=seed)


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_generated_dags_are_valid(params):
    graph = build_dag(params)
    assert validate_graph(graph).is_valid


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_topological_order_respects_dependencies(params):
    graph = build_dag(params)
    order = graph.topological_order()
    position = {name: index for index, name in enumerate(order)}
    assert len(order) == len(graph)
    for producer, consumer in graph.dependencies():
        assert position[producer] < position[consumer]


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_asap_respects_precedence(params):
    graph = build_dag(params)
    starts = asap_times(graph)
    for producer, consumer in graph.dependencies():
        assert starts[consumer] >= (starts[producer]
                                    + graph.execution_time(producer) - 1e-9)


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_weights_bound_by_critical_path(params):
    graph = build_dag(params)
    weights = subtask_weights(graph)
    makespan = graph.critical_path_length()
    for name, weight in weights.items():
        assert graph.execution_time(name) - 1e-9 <= weight <= makespan + 1e-9
    assert max(weights.values()) == pytest.approx(makespan)


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_slack_is_non_negative_and_zero_on_critical_path(params):
    graph = build_dag(params)
    slacks = slack(graph)
    assert all(value >= -1e-9 for value in slacks.values())
    for name in critical_path(graph):
        assert slacks[name] == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(params=dag_params)
def test_alap_never_earlier_than_asap(params):
    graph = build_dag(params)
    asap = asap_times(graph)
    alap = alap_times(graph)
    for name in graph.subtask_names:
        assert alap[name] >= asap[name] - 1e-9


@settings(max_examples=40, deadline=None)
@given(params=dag_params, model=time_models)
def test_serialization_roundtrip(params, model):
    graph = build_dag(params, model)
    rebuilt = graph_from_dict(graph_to_dict(graph))
    assert rebuilt.subtask_names == graph.subtask_names
    assert sorted(rebuilt.dependencies()) == sorted(graph.dependencies())
    assert rebuilt.critical_path_length() == pytest.approx(
        graph.critical_path_length()
    )


@settings(max_examples=30, deadline=None)
@given(layers=st.integers(min_value=1, max_value=6),
       width=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=1000))
def test_layered_dags_are_layered(layers, width, seed):
    graph = layered_dag("lay", layers=layers, width=width, seed=seed)
    assert validate_graph(graph).is_valid
    # The longest chain cannot exceed the number of layers.
    longest_chain = 0
    depth = {}
    for name in graph.topological_order():
        depth[name] = 1 + max((depth[p] for p in graph.predecessors(name)),
                              default=0)
        longest_chain = max(longest_chain, depth[name])
    assert longest_chain <= layers
