"""Unit tests for graph (de)serialization."""

import pytest

from repro.errors import GraphError
from repro.graphs.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_graph,
    save_graph,
)
from repro.graphs.subtask import ResourceClass


class TestDictRoundTrip:
    def test_roundtrip_preserves_structure(self, diamond):
        rebuilt = graph_from_dict(graph_to_dict(diamond))
        assert rebuilt.name == diamond.name
        assert rebuilt.subtask_names == diamond.subtask_names
        assert rebuilt.dependencies() == diamond.dependencies()

    def test_roundtrip_preserves_subtask_attributes(self, mixed_graph):
        rebuilt = graph_from_dict(graph_to_dict(mixed_graph))
        for original in mixed_graph:
            clone = rebuilt.subtask(original.name)
            assert clone.execution_time == original.execution_time
            assert clone.resource is original.resource
            assert clone.configuration == original.configuration

    def test_roundtrip_preserves_data_size(self):
        from repro.graphs.taskgraph import TaskGraph
        from repro.graphs.subtask import drhw_subtask
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        graph.add_subtask(drhw_subtask("b", 1.0))
        graph.add_dependency("a", "b", data_size=128.0)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.data_size("a", "b") == pytest.approx(128.0)

    def test_malformed_payload(self):
        with pytest.raises(GraphError):
            graph_from_dict({"subtasks": []})

    def test_malformed_subtask_entry(self):
        with pytest.raises(GraphError):
            graph_from_dict({"name": "x", "subtasks": [{"name": "a"}]})

    def test_malformed_dependency_entry(self):
        payload = {
            "name": "x",
            "subtasks": [{"name": "a", "execution_time": 1.0}],
            "dependencies": [{"producer": "a"}],
        }
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_default_resource_is_drhw(self):
        payload = {"name": "x",
                   "subtasks": [{"name": "a", "execution_time": 1.0}]}
        graph = graph_from_dict(payload)
        assert graph.subtask("a").resource is ResourceClass.DRHW


class TestJsonAndFiles:
    def test_json_roundtrip(self, benchmark_graphs):
        for graph in benchmark_graphs:
            rebuilt = graph_from_json(graph_to_json(graph))
            assert rebuilt.subtask_names == graph.subtask_names
            assert rebuilt.critical_path_length() == pytest.approx(
                graph.critical_path_length()
            )

    def test_invalid_json(self):
        with pytest.raises(GraphError):
            graph_from_json("{not json")

    def test_file_roundtrip(self, tmp_path, diamond):
        path = save_graph(diamond, tmp_path / "diamond.json")
        assert path.exists()
        rebuilt = load_graph(path)
        assert rebuilt.subtask_names == diamond.subtask_names

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(tmp_path / "missing.json")
