"""Unit tests for graph validation."""

import pytest

from repro.errors import GraphError
from repro.graphs.subtask import drhw_subtask
from repro.graphs.taskgraph import TaskGraph
from repro.graphs.validation import ValidationReport, assert_valid, validate_graph


class TestValidateGraph:
    def test_valid_graph(self, diamond):
        report = validate_graph(diamond)
        assert report.is_valid
        assert report.errors == []

    def test_empty_graph_invalid(self):
        report = validate_graph(TaskGraph("empty"))
        assert not report.is_valid
        assert "no subtasks" in report.errors[0]

    def test_require_drhw(self):
        from repro.graphs.subtask import isp_subtask
        graph = TaskGraph("sw_only")
        graph.add_subtask(isp_subtask("sw", 1.0))
        report = validate_graph(graph, require_drhw=True)
        assert not report.is_valid

    def test_disconnected_graph_warns(self):
        graph = TaskGraph("disc")
        graph.add_subtask(drhw_subtask("a", 1.0))
        graph.add_subtask(drhw_subtask("b", 1.0))
        report = validate_graph(graph)
        assert report.is_valid
        assert any("disconnected" in warning for warning in report.warnings)

    def test_shared_configuration_warns(self):
        graph = TaskGraph("shared")
        graph.add_subtask(drhw_subtask("a", 1.0, configuration="cfg"))
        graph.add_subtask(drhw_subtask("b", 1.0, configuration="cfg"))
        graph.add_dependency("a", "b")
        report = validate_graph(graph)
        assert report.is_valid
        assert any("shared" in warning for warning in report.warnings)

    def test_benchmarks_are_valid(self, benchmark_graphs):
        for graph in benchmark_graphs:
            assert validate_graph(graph, require_drhw=True).is_valid


class TestAssertValid:
    def test_returns_graph(self, diamond):
        assert assert_valid(diamond) is diamond

    def test_raises_on_invalid(self):
        with pytest.raises(GraphError):
            assert_valid(TaskGraph("empty"))

    def test_report_raise_if_invalid(self):
        report = ValidationReport(graph_name="g", errors=["boom"])
        with pytest.raises(GraphError, match="boom"):
            report.raise_if_invalid()

    def test_report_no_raise_when_valid(self):
        ValidationReport(graph_name="g").raise_if_invalid()
