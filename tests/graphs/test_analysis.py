"""Unit tests for the graph timing analyses."""

import pytest

from repro.errors import GraphError
from repro.graphs.analysis import (
    alap_times,
    asap_finish_times,
    asap_times,
    critical_path,
    is_critical,
    max_parallelism,
    parallelism_profile,
    slack,
    subtask_weights,
    weight_ordered_subtasks,
)
from repro.graphs.taskgraph import chain_graph


class TestAsap:
    def test_chain_asap(self, chain4):
        starts = asap_times(chain4)
        assert starts["s0"] == pytest.approx(0.0)
        assert starts["s1"] == pytest.approx(20.0)
        assert starts["s3"] == pytest.approx(61.0)

    def test_diamond_asap(self, diamond):
        starts = asap_times(diamond)
        assert starts["left"] == pytest.approx(10.0)
        assert starts["right"] == pytest.approx(10.0)
        assert starts["sink"] == pytest.approx(22.0)

    def test_asap_finish(self, diamond):
        finishes = asap_finish_times(diamond)
        assert finishes["sink"] == pytest.approx(28.0)


class TestWeights:
    def test_chain_weights_decrease(self, chain4):
        weights = subtask_weights(chain4)
        assert weights["s0"] == pytest.approx(81.0)
        assert weights["s1"] == pytest.approx(61.0)
        assert weights["s3"] == pytest.approx(20.0)

    def test_diamond_weights(self, diamond):
        weights = subtask_weights(diamond)
        assert weights["src"] == pytest.approx(28.0)
        assert weights["right"] == pytest.approx(18.0)
        assert weights["left"] == pytest.approx(14.0)
        assert weights["sink"] == pytest.approx(6.0)

    def test_critical_path_subtasks_have_max_weight(self, diamond):
        weights = subtask_weights(diamond)
        path = critical_path(diamond)
        assert path == ["src", "right", "sink"]
        assert weights["src"] == max(weights.values())

    def test_weight_ordering_helper(self, diamond):
        ordered = weight_ordered_subtasks(diamond)
        assert ordered == ["src", "right", "left", "sink"]

    def test_weight_ordering_subset(self, diamond):
        assert weight_ordered_subtasks(diamond, ["left", "sink"]) == [
            "left", "sink"
        ]

    def test_weight_ordering_unknown_subtask(self, diamond):
        with pytest.raises(GraphError):
            weight_ordered_subtasks(diamond, ["nope"])


class TestAlapAndSlack:
    def test_alap_of_critical_path_equals_asap(self, diamond):
        asap = asap_times(diamond)
        alap = alap_times(diamond)
        for name in critical_path(diamond):
            assert alap[name] == pytest.approx(asap[name])

    def test_non_critical_subtask_has_slack(self, diamond):
        slacks = slack(diamond)
        assert slacks["left"] == pytest.approx(4.0)
        assert slacks["right"] == pytest.approx(0.0)

    def test_alap_with_larger_makespan(self, diamond):
        alap = alap_times(diamond, makespan=40.0)
        assert alap["sink"] == pytest.approx(34.0)

    def test_alap_below_critical_path_rejected(self, diamond):
        with pytest.raises(GraphError):
            alap_times(diamond, makespan=10.0)

    def test_is_critical(self, diamond):
        assert is_critical(diamond, "src")
        assert is_critical(diamond, "right")
        assert not is_critical(diamond, "left")


class TestParallelism:
    def test_chain_parallelism_is_one(self, chain4):
        assert max_parallelism(chain4) == 1

    def test_diamond_parallelism_is_two(self, diamond):
        assert max_parallelism(diamond) == 2

    def test_profile_length(self, diamond):
        assert len(parallelism_profile(diamond, resolution=64)) == 64

    def test_profile_never_exceeds_subtask_count(self, diamond):
        assert max(parallelism_profile(diamond)) <= len(diamond)

    def test_single_subtask_profile(self):
        graph = chain_graph("one", [5.0])
        assert max_parallelism(graph) == 1


class TestCriticalPath:
    def test_empty_graph(self):
        from repro.graphs.taskgraph import TaskGraph
        assert critical_path(TaskGraph("empty")) == []

    def test_path_length_matches_makespan(self, benchmark_graphs):
        for graph in benchmark_graphs:
            path = critical_path(graph)
            total = sum(graph.execution_time(name) for name in path)
            assert total == pytest.approx(graph.critical_path_length())

    def test_path_is_connected(self, benchmark_graphs):
        for graph in benchmark_graphs:
            path = critical_path(graph)
            for producer, consumer in zip(path, path[1:]):
                assert consumer in graph.successors(producer)
