"""Unit tests for the subtask model."""

import pytest

from repro.graphs.subtask import ResourceClass, Subtask, drhw_subtask, isp_subtask


class TestSubtaskConstruction:
    def test_defaults(self):
        subtask = Subtask(name="dct", execution_time=8.0)
        assert subtask.resource is ResourceClass.DRHW
        assert subtask.configuration == "dct"
        assert subtask.energy == 0.0

    def test_explicit_configuration(self):
        subtask = Subtask(name="dct_0", execution_time=8.0,
                          configuration="dct")
        assert subtask.configuration == "dct"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Subtask(name="", execution_time=1.0)

    def test_zero_execution_time_rejected(self):
        with pytest.raises(ValueError):
            Subtask(name="x", execution_time=0.0)

    def test_negative_execution_time_rejected(self):
        with pytest.raises(ValueError):
            Subtask(name="x", execution_time=-1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            Subtask(name="x", execution_time=1.0, energy=-0.1)

    def test_frozen(self):
        subtask = Subtask(name="x", execution_time=1.0)
        with pytest.raises(AttributeError):
            subtask.execution_time = 2.0


class TestSubtaskHelpers:
    def test_drhw_constructor(self):
        subtask = drhw_subtask("me", 10.0, configuration="motion")
        assert subtask.resource is ResourceClass.DRHW
        assert subtask.configuration == "motion"
        assert subtask.is_reconfigurable

    def test_isp_constructor(self):
        subtask = isp_subtask("control", 2.0)
        assert subtask.resource is ResourceClass.ISP
        assert not subtask.is_reconfigurable

    def test_with_execution_time(self):
        subtask = drhw_subtask("a", 4.0)
        changed = subtask.with_execution_time(6.0)
        assert changed.execution_time == 6.0
        assert changed.name == "a"
        assert subtask.execution_time == 4.0

    def test_with_configuration(self):
        subtask = drhw_subtask("a", 4.0)
        changed = subtask.with_configuration("shared")
        assert changed.configuration == "shared"
        assert subtask.configuration == "a"

    def test_scaled(self):
        subtask = drhw_subtask("a", 4.0)
        assert subtask.scaled(2.5).execution_time == pytest.approx(10.0)

    def test_scaled_rejects_non_positive_factor(self):
        subtask = drhw_subtask("a", 4.0)
        with pytest.raises(ValueError):
            subtask.scaled(0.0)

    def test_equality_and_hash(self):
        a = Subtask(name="x", execution_time=1.0)
        b = Subtask(name="x", execution_time=1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_resource_class_values(self):
        assert ResourceClass("drhw") is ResourceClass.DRHW
        assert ResourceClass("isp") is ResourceClass.ISP
