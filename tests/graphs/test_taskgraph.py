"""Unit tests for the task-graph container."""

import pytest

from repro.errors import (
    CycleError,
    DuplicateSubtaskError,
    GraphError,
    UnknownSubtaskError,
)
from repro.graphs.subtask import drhw_subtask, isp_subtask
from repro.graphs.taskgraph import TaskGraph, chain_graph, fork_join_graph


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph("")

    def test_add_subtask_and_lookup(self):
        graph = TaskGraph("t")
        subtask = graph.add_subtask(drhw_subtask("a", 1.0))
        assert graph.subtask("a") is subtask
        assert "a" in graph
        assert len(graph) == 1

    def test_duplicate_subtask_rejected(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        with pytest.raises(DuplicateSubtaskError):
            graph.add_subtask(drhw_subtask("a", 2.0))

    def test_unknown_subtask_lookup(self):
        graph = TaskGraph("t")
        with pytest.raises(UnknownSubtaskError):
            graph.subtask("missing")

    def test_dependency_requires_known_endpoints(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        with pytest.raises(UnknownSubtaskError):
            graph.add_dependency("a", "b")

    def test_self_dependency_rejected(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        with pytest.raises(CycleError):
            graph.add_dependency("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        graph.add_subtask(drhw_subtask("b", 1.0))
        graph.add_dependency("a", "b")
        with pytest.raises(CycleError):
            graph.add_dependency("b", "a")
        # The offending edge must not remain in the graph.
        assert graph.dependencies() == [("a", "b")]

    def test_negative_data_size_rejected(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        graph.add_subtask(drhw_subtask("b", 1.0))
        with pytest.raises(GraphError):
            graph.add_dependency("a", "b", data_size=-1.0)

    def test_constructor_with_subtasks_and_dependencies(self):
        graph = TaskGraph(
            "t",
            subtasks=[drhw_subtask("a", 1.0), drhw_subtask("b", 2.0)],
            dependencies=[("a", "b")],
        )
        assert graph.dependencies() == [("a", "b")]


class TestIntrospection:
    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == ["src"]
        assert diamond.sinks() == ["sink"]

    def test_predecessors_successors(self, diamond):
        assert set(diamond.successors("src")) == {"left", "right"}
        assert set(diamond.predecessors("sink")) == {"left", "right"}

    def test_topological_order_is_valid(self, diamond):
        order = diamond.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for producer, consumer in diamond.dependencies():
            assert position[producer] < position[consumer]

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order() == diamond.topological_order()

    def test_critical_path_length_chain(self, chain4):
        assert chain4.critical_path_length() == pytest.approx(81.0)

    def test_critical_path_length_diamond(self, diamond):
        # src -> right -> sink is the longest path: 10 + 12 + 6.
        assert diamond.critical_path_length() == pytest.approx(28.0)

    def test_total_execution_time(self, diamond):
        assert diamond.total_execution_time == pytest.approx(36.0)

    def test_data_size_roundtrip(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a", 1.0))
        graph.add_subtask(drhw_subtask("b", 1.0))
        graph.add_dependency("a", "b", data_size=64.0)
        assert graph.data_size("a", "b") == pytest.approx(64.0)

    def test_data_size_missing_edge(self, diamond):
        with pytest.raises(GraphError):
            diamond.data_size("left", "right")

    def test_drhw_and_isp_partitions(self, mixed_graph):
        assert [s.name for s in mixed_graph.drhw_subtasks] == ["hw_a", "hw_c"]
        assert [s.name for s in mixed_graph.isp_subtasks] == ["sw_b"]

    def test_configurations_unique(self):
        graph = TaskGraph("t")
        graph.add_subtask(drhw_subtask("a0", 1.0, configuration="shared"))
        graph.add_subtask(drhw_subtask("a1", 1.0, configuration="shared"))
        graph.add_subtask(isp_subtask("sw", 1.0))
        assert graph.configurations == ["shared"]

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("sink") == ["left", "right", "src"]
        assert diamond.descendants("src") == ["left", "right", "sink"]

    def test_empty_graph_critical_path(self):
        assert TaskGraph("empty").critical_path_length() == 0.0


class TestTransformations:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_subtask(drhw_subtask("extra", 1.0))
        assert "extra" not in diamond
        assert len(clone) == len(diamond) + 1

    def test_scaled(self, chain4):
        scaled = chain4.scaled(0.5)
        assert scaled.critical_path_length() == pytest.approx(40.5)
        assert chain4.critical_path_length() == pytest.approx(81.0)

    def test_relabeled(self, diamond):
        relabeled = diamond.relabeled("x_")
        assert set(relabeled.subtask_names) == {"x_src", "x_left", "x_right",
                                                "x_sink"}
        assert relabeled.subtask("x_src").configuration == "x_src"
        assert ("x_src", "x_left") in relabeled.dependencies()


class TestFactories:
    def test_chain_graph_structure(self):
        graph = chain_graph("c", [1.0, 2.0, 3.0])
        assert len(graph) == 3
        assert graph.dependencies() == [("s0", "s1"), ("s1", "s2")]
        assert graph.critical_path_length() == pytest.approx(6.0)

    def test_fork_join_structure(self):
        graph = fork_join_graph("fj", 2.0, [3.0, 4.0, 5.0], 1.0)
        assert len(graph) == 5
        assert graph.sources() == ["s_fork"]
        assert graph.sinks() == ["s_join"]
        assert graph.critical_path_length() == pytest.approx(2.0 + 5.0 + 1.0)
