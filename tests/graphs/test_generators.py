"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    ExecutionTimeModel,
    chain,
    independent_set,
    layered_dag,
    multimedia_like,
    random_dag,
    scaled_family,
    series_parallel,
    with_isp_fraction,
)
from repro.graphs.subtask import ResourceClass
from repro.graphs.validation import validate_graph


class TestExecutionTimeModel:
    def test_sample_within_bounds(self):
        model = ExecutionTimeModel(minimum=1.0, maximum=5.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 5.0

    def test_invalid_bounds(self):
        with pytest.raises(GraphError):
            ExecutionTimeModel(minimum=0.0, maximum=1.0)
        with pytest.raises(GraphError):
            ExecutionTimeModel(minimum=2.0, maximum=1.0)


class TestBasicGenerators:
    def test_chain_length(self):
        graph = chain("c", 5, seed=1)
        assert len(graph) == 5
        assert len(graph.dependencies()) == 4

    def test_chain_explicit_times(self):
        graph = chain("c", 3, times=[1.0, 2.0, 3.0])
        assert graph.critical_path_length() == pytest.approx(6.0)

    def test_chain_rejects_zero_length(self):
        with pytest.raises(GraphError):
            chain("c", 0)

    def test_independent_set(self):
        graph = independent_set("i", 6, seed=2)
        assert len(graph) == 6
        assert graph.dependencies() == []

    def test_layered_dag_is_valid(self):
        graph = layered_dag("l", layers=4, width=3, seed=3)
        assert validate_graph(graph).is_valid
        assert len(graph) >= 4

    def test_layered_dag_every_nonsource_has_predecessor(self):
        graph = layered_dag("l", layers=5, width=4, edge_probability=0.3,
                            seed=4)
        sources = set(graph.sources())
        for name in graph.subtask_names:
            if name not in sources:
                assert graph.predecessors(name)

    def test_layered_dag_bad_probability(self):
        with pytest.raises(GraphError):
            layered_dag("l", layers=2, width=2, edge_probability=1.5)

    def test_series_parallel_structure(self):
        graph = series_parallel("sp", depth=2, fan_out=2, seed=5)
        assert validate_graph(graph).is_valid
        assert len(graph.sources()) == 1
        assert len(graph.sinks()) == 1

    def test_random_dag_exact_count(self):
        graph = random_dag("r", count=17, edge_probability=0.2, seed=6)
        assert len(graph) == 17
        assert validate_graph(graph).is_valid

    def test_random_dag_zero_probability_has_no_edges(self):
        graph = random_dag("r", count=5, edge_probability=0.0, seed=7)
        assert graph.dependencies() == []


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = random_dag("r", count=12, seed=42)
        b = random_dag("r", count=12, seed=42)
        assert a.subtask_names == b.subtask_names
        assert a.dependencies() == b.dependencies()
        for name in a.subtask_names:
            assert a.execution_time(name) == b.execution_time(name)

    def test_different_seed_different_times(self):
        a = random_dag("r", count=12, seed=1)
        b = random_dag("r", count=12, seed=2)
        assert any(a.execution_time(n) != b.execution_time(n)
                   for n in a.subtask_names)


class TestDomainGenerators:
    def test_multimedia_like_exact_count(self):
        for count in (4, 6, 8, 14):
            graph = multimedia_like("m", subtask_count=count, seed=count)
            assert len(graph) == count
            assert validate_graph(graph).is_valid

    def test_multimedia_like_granularity(self):
        graph = multimedia_like("m", subtask_count=10, granularity=3.0,
                                reconfiguration_latency=4.0, seed=9)
        mean = graph.total_execution_time / len(graph)
        assert 4.0 < mean < 24.0

    def test_scaled_family_sizes(self):
        graphs = scaled_family("fam", [5, 10, 20], seed=10)
        assert [len(g) for g in graphs] == [5, 10, 20]

    def test_with_isp_fraction(self):
        graph = multimedia_like("m", subtask_count=20, seed=11)
        mixed = with_isp_fraction(graph, fraction=0.5, seed=12)
        isp_count = sum(1 for s in mixed if s.resource is ResourceClass.ISP)
        assert 0 < isp_count < 20
        assert len(mixed) == 20
        assert mixed.dependencies() == graph.dependencies()

    def test_with_isp_fraction_bounds(self):
        graph = multimedia_like("m", subtask_count=5, seed=13)
        with pytest.raises(GraphError):
            with_isp_fraction(graph, fraction=1.5)
