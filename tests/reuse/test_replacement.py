"""Unit tests for the tile replacement policies."""

import pytest

from repro.errors import PlatformError
from repro.platform.tile import TileState
from repro.reuse.replacement import (
    FifoReplacement,
    LfuReplacement,
    LruReplacement,
    REPLACEMENT_POLICIES,
    RandomlikeReplacement,
    WeightAwareReplacement,
    make_replacement_policy,
)


def make_tiles():
    """Four tiles: one blank, three with configurations of varying history."""
    blank = TileState(index=0)
    old = TileState(index=1)
    old.load("old_cfg", completion_time=1.0)
    old.record_execution(1.0, 2.0)
    recent = TileState(index=2)
    recent.load("recent_cfg", completion_time=5.0)
    recent.record_execution(5.0, 6.0)
    hot = TileState(index=3)
    hot.load("hot_cfg", completion_time=2.0)
    for start in (2.0, 10.0, 20.0):
        hot.record_execution(start, start + 1.0)
    return [blank, old, recent, hot]


class TestVictimSelection:
    def test_blank_tiles_preferred(self):
        tiles = make_tiles()
        victims = LruReplacement().select_victims(tiles, 1, now=30.0)
        assert victims == [0]

    def test_lru_evicts_oldest_use(self):
        tiles = make_tiles()
        victims = LruReplacement().select_victims(tiles, 2, now=30.0)
        assert victims == [0, 1]

    def test_lfu_evicts_least_used(self):
        tiles = make_tiles()
        victims = LfuReplacement().select_victims(tiles, 3, now=30.0)
        # blank first, then the two single-use tiles before the 3-use tile.
        assert victims[0] == 0
        assert 3 not in victims

    def test_fifo_evicts_oldest_load(self):
        tiles = make_tiles()
        victims = FifoReplacement().select_victims(tiles, 2, now=30.0)
        assert victims == [0, 1]

    def test_protected_configurations_avoided(self):
        tiles = make_tiles()
        victims = LruReplacement().select_victims(
            tiles, 2, now=30.0, protected=["old_cfg"]
        )
        assert 1 not in victims

    def test_protection_is_soft(self):
        tiles = make_tiles()
        victims = LruReplacement().select_victims(
            tiles, 4, now=30.0, protected=["old_cfg", "recent_cfg", "hot_cfg"]
        )
        assert sorted(victims) == [0, 1, 2, 3]

    def test_upcoming_configurations_deprioritized(self):
        tiles = make_tiles()
        victims = LruReplacement().select_victims(
            tiles, 2, now=30.0, upcoming=["old_cfg"]
        )
        assert victims[0] == 0
        assert 1 not in victims

    def test_locked_tiles_never_selected(self):
        tiles = make_tiles()
        tiles[0].locked = True
        tiles[1].locked = True
        victims = LruReplacement().select_victims(tiles, 2, now=30.0)
        assert set(victims) == {2, 3}

    def test_too_few_candidates_raises(self):
        tiles = make_tiles()
        for tile in tiles:
            tile.locked = True
        with pytest.raises(PlatformError):
            LruReplacement().select_victims(tiles, 1, now=0.0)

    def test_negative_count_rejected(self):
        with pytest.raises(PlatformError):
            LruReplacement().select_victims(make_tiles(), -1)

    def test_zero_count(self):
        assert LruReplacement().select_victims(make_tiles(), 0) == []


class TestSpecialPolicies:
    def test_randomlike_is_deterministic(self):
        tiles = make_tiles()
        first = RandomlikeReplacement().select_victims(tiles, 3, now=0.0)
        second = RandomlikeReplacement().select_victims(tiles, 3, now=0.0)
        assert first == second

    def test_weight_aware_keeps_heavy_configurations(self):
        tiles = make_tiles()
        policy = WeightAwareReplacement({"old_cfg": 100.0, "recent_cfg": 1.0,
                                         "hot_cfg": 50.0})
        victims = policy.select_victims(tiles, 2, now=30.0)
        assert victims == [0, 2]

    def test_weight_aware_update(self):
        policy = WeightAwareReplacement()
        policy.update_weights({"cfg": 5.0})
        assert policy.weights["cfg"] == 5.0


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(REPLACEMENT_POLICIES) == {"lru", "lfu", "fifo",
                                             "randomlike", "weight-aware"}

    def test_make_replacement_policy(self):
        assert isinstance(make_replacement_policy("lru"), LruReplacement)

    def test_unknown_policy(self):
        with pytest.raises(PlatformError):
            make_replacement_policy("belady")
