"""Property-based tests for the reuse module and the inter-task planner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intertask import (
    PrefetchRequest,
    TileWindow,
    plan_intertask_prefetch,
)
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.platform.tile import TileState
from repro.reuse.reuse import ReuseModule
from repro.scheduling.list_scheduler import build_initial_schedule

reuse_params = st.tuples(
    st.integers(min_value=1, max_value=10),      # subtask count
    st.floats(min_value=0.0, max_value=0.6),     # edge probability
    st.integers(min_value=0, max_value=3000),    # graph seed
    st.integers(min_value=1, max_value=12),      # tile count
    st.integers(min_value=0, max_value=3000),    # residency seed
)


def build_case(params):
    count, probability, graph_seed, tiles, residency_seed = params
    graph = random_dag("reuse", count=count, edge_probability=probability,
                       time_model=ExecutionTimeModel(minimum=1.0, maximum=20.0),
                       seed=graph_seed)
    platform = Platform(tile_count=max(tiles, count))
    placed = build_initial_schedule(graph, platform)
    rng = random.Random(residency_seed)
    tiles_state = platform.new_tile_states()
    configurations = [s.configuration for s in graph.drhw_subtasks]
    for tile in tiles_state:
        if configurations and rng.random() < 0.5:
            tile.load(rng.choice(configurations), completion_time=0.0)
    return placed, tiles_state


@settings(max_examples=50, deadline=None)
@given(params=reuse_params)
def test_reuse_binding_is_injective_and_complete(params):
    placed, tiles = build_case(params)
    decision = ReuseModule().analyze(placed, tiles)
    bound = list(decision.tile_binding.values())
    assert len(bound) == len(set(bound))
    assert set(decision.tile_binding) == set(placed.tiles_used)
    assert set(decision.subtask_tiles) == set(placed.drhw_names)


@settings(max_examples=50, deadline=None)
@given(params=reuse_params)
def test_reused_subtasks_really_have_their_configuration_resident(params):
    placed, tiles = build_case(params)
    decision = ReuseModule().analyze(placed, tiles)
    graph = placed.graph
    first_on_tile = set(placed.first_on_tile().values())
    for name in decision.reused:
        assert name in first_on_tile
        physical = decision.subtask_tiles[name]
        assert tiles[physical].holds(graph.subtask(name).configuration)


@settings(max_examples=50, deadline=None)
@given(params=reuse_params)
def test_reuse_fraction_bounds(params):
    placed, tiles = build_case(params)
    decision = ReuseModule().analyze(placed, tiles)
    assert 0.0 <= decision.reuse_fraction(placed) <= 1.0


# ---------------------------------------------------------------------- #
# Inter-task planner properties
# ---------------------------------------------------------------------- #
plan_params = st.tuples(
    st.integers(min_value=0, max_value=8),       # request count
    st.integers(min_value=0, max_value=8),       # tile count
    st.floats(min_value=0.0, max_value=50.0),    # controller free
    st.floats(min_value=0.0, max_value=80.0),    # task finish
    st.floats(min_value=0.1, max_value=8.0),     # latency
    st.integers(min_value=0, max_value=999),     # seed
)


@settings(max_examples=80, deadline=None)
@given(params=plan_params, allow_overrun=st.booleans())
def test_intertask_plan_invariants(params, allow_overrun):
    requests_count, tiles_count, controller_free, task_finish, latency, seed = params
    rng = random.Random(seed)
    requests = [PrefetchRequest(subtask=f"s{i}", configuration=f"c{i}")
                for i in range(requests_count)]
    windows = [TileWindow(tile=i,
                          available_from=rng.uniform(0.0, task_finish + 5.0),
                          resident_configuration=(f"c{rng.randrange(10)}"
                                                  if rng.random() < 0.4 else None))
               for i in range(tiles_count)]
    plan = plan_intertask_prefetch(requests, windows,
                                   controller_free=controller_free,
                                   task_finish=task_finish,
                                   reconfiguration_latency=latency,
                                   allow_overrun=allow_overrun)
    resident = {w.resident_configuration for w in windows
                if w.resident_configuration}
    window_by_tile = {w.tile: w for w in windows}
    previous_finish = max(controller_free, 0.0)
    used_tiles = set()
    for load in plan.loads:
        # sequential on the single port
        assert load.start >= previous_finish - 1e-9
        previous_finish = load.finish
        # starts inside the idle tail and after the tile became free
        assert load.start < task_finish
        assert load.start >= window_by_tile[load.tile].available_from - 1e-9
        if not allow_overrun:
            assert load.finish <= task_finish + 1e-9
        # never loads something already resident, never reuses a tile twice
        assert load.configuration not in resident
        assert load.tile not in used_tiles
        used_tiles.add(load.tile)
    # configurations are planned at most once
    planned = [load.configuration for load in plan.loads]
    assert len(planned) == len(set(planned))
    assert plan.controller_free >= controller_free - 1e-9
