"""Unit tests for the reuse module."""

import pytest

from repro.errors import PlatformError
from repro.graphs.subtask import drhw_subtask
from repro.graphs.taskgraph import TaskGraph
from repro.platform.description import Platform
from repro.platform.tile import TileState
from repro.reuse.reuse import ReuseModule, resident_configurations
from repro.scheduling.list_scheduler import build_initial_schedule


def _blank_tiles(count):
    return [TileState(index=i) for i in range(count)]


def _tiles_with(configurations):
    tiles = []
    for index, configuration in enumerate(configurations):
        tile = TileState(index=index)
        if configuration is not None:
            tile.load(configuration, completion_time=0.0)
        tiles.append(tile)
    return tiles


class TestResidentConfigurations:
    def test_mapping(self):
        tiles = _tiles_with(["a", None, "b", "a"])
        resident = resident_configurations(tiles)
        assert resident["a"] == (0, 3)
        assert resident["b"] == (2,)
        assert None not in resident


class TestReuseAnalysis:
    def test_blank_tiles_mean_no_reuse(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        decision = ReuseModule().analyze(placed, _blank_tiles(8))
        assert decision.reused == frozenset()
        assert decision.reuse_fraction(placed) == 0.0
        # every logical tile still gets a physical binding
        assert set(decision.tile_binding) == set(placed.tiles_used)

    def test_resident_configurations_are_reused(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        tiles = _tiles_with(["src", "left", None, None, None, None, None, None])
        decision = ReuseModule().analyze(placed, tiles)
        assert "src" in decision.reused
        assert "left" in decision.reused
        # reused subtasks are bound to the tile that holds their bitstream
        assert decision.subtask_tiles["src"] == 0
        assert decision.subtask_tiles["left"] == 1

    def test_full_residency_full_reuse(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        tiles = _tiles_with(["src", "left", "right", "sink",
                             None, None, None, None])
        decision = ReuseModule().analyze(placed, tiles)
        assert decision.reused == frozenset(diamond.subtask_names)
        assert decision.reuse_fraction(placed) == pytest.approx(1.0)

    def test_only_first_on_tile_can_reuse(self, chain4):
        # With a single tile every later subtask overwrites the tile, so at
        # most the first subtask can be reused.
        placed = build_initial_schedule(chain4, Platform(tile_count=1))
        tiles = _tiles_with(["s2"])
        decision = ReuseModule().analyze(placed, tiles)
        assert decision.reused == frozenset()
        tiles = _tiles_with(["s0"])
        decision = ReuseModule().analyze(placed, tiles)
        assert decision.reused == frozenset(["s0"])

    def test_distinct_physical_tiles(self, benchmark_graphs, platform8):
        module = ReuseModule()
        for graph in benchmark_graphs:
            placed = build_initial_schedule(graph, platform8)
            decision = module.analyze(placed, _blank_tiles(8))
            bound = list(decision.tile_binding.values())
            assert len(bound) == len(set(bound))

    def test_too_few_physical_tiles(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        used = len(placed.tiles_used)
        if used > 1:
            with pytest.raises(PlatformError):
                ReuseModule().analyze(placed, _blank_tiles(used - 1))

    def test_heavier_first_subtask_wins_contested_configuration(self):
        # Two logical tiles whose first subtasks share a configuration but
        # only one physical tile holds it: the heavier one gets the match.
        graph = TaskGraph("contested")
        graph.add_subtask(drhw_subtask("heavy", 20.0, configuration="shared"))
        graph.add_subtask(drhw_subtask("light", 2.0, configuration="shared"))
        placed = build_initial_schedule(graph, Platform(tile_count=4))
        tiles = _tiles_with(["shared", None, None, None])
        decision = ReuseModule().analyze(placed, tiles)
        assert "heavy" in decision.reused
        assert "light" not in decision.reused

    def test_operations_counted(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        decision = ReuseModule().analyze(placed, _blank_tiles(8))
        assert decision.operations > 0

    def test_locked_tiles_not_matched(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        tiles = _tiles_with(["src"] + [None] * 7)
        tiles[0].locked = True
        decision = ReuseModule().analyze(placed, tiles)
        assert "src" not in decision.reused

    def test_isp_subtasks_ignored(self, mixed_graph, platform8):
        placed = build_initial_schedule(mixed_graph, platform8)
        decision = ReuseModule().analyze(placed, _blank_tiles(8))
        assert set(decision.subtask_tiles) == {"hw_a", "hw_c"}
