"""Concurrency contracts: dedup, shedding, byte-identity, clean shutdown."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runner import SweepEngine
from repro.runner.cache import metrics_to_dict
from repro.service import ReproService, ServiceState
from repro.storage import dumps_canonical

from .test_state import make_point

SYNTH_PAYLOAD = {
    "name": "synthetic",
    "options": dict(task_count=2, subtasks_per_task=5,
                    scenarios_per_task=2, seed=3),
}


def wait_until(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


class TestDeduplication:
    def test_identical_concurrent_requests_compute_once(self):
        """N identical in-flight requests -> exactly one simulation."""
        state = ServiceState()
        service = ReproService(state)
        payload = {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5}
        followers = 4
        responses = []
        lock = threading.Lock()

        def request():
            response = service.handle("/simulate", payload)
            with lock:
                responses.append(response)

        # Hold the compute lock so the leader blocks mid-computation and
        # every other thread joins its in-flight future deterministically.
        with state.compute_lock:
            threads = [threading.Thread(target=request)
                       for _ in range(followers + 1)]
            for thread in threads:
                thread.start()
            wait_until(lambda: service.metrics.snapshot()["endpoints"]
                       .get("simulate", {}).get("dedup_hits", 0)
                       == followers)
        for thread in threads:
            thread.join(timeout=60)
        assert len(responses) == followers + 1
        assert all(status == 200 for status, _ in responses)
        # Exactly one computation happened; everyone saw its result.
        assert state.simulations == 1
        deduplicated = [body for _, body in responses
                        if body.get("deduplicated")]
        assert len(deduplicated) == followers
        reference = next(body for _, body in responses
                         if not body.get("deduplicated"))
        for body in deduplicated:
            copy = dict(body)
            del copy["deduplicated"]
            assert copy == reference

    def test_next_identical_request_recomputes(self):
        """The in-flight table deduplicates concurrency, not history."""
        state = ServiceState()
        service = ReproService(state)
        payload = {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5}
        service.handle("/simulate", payload)
        service.handle("/simulate", payload)
        assert state.simulations == 2  # no cache dir: nothing memoized
        assert service.inflight.inflight_count == 0


class TestShedding:
    def test_sheds_past_queue_depth_with_retry_hint(self):
        """A saturated admission gate sheds with 429 + the retry hint."""
        state = ServiceState(max_pending=1, shed_retry_after=0.25)
        service = ReproService(state)
        blocked = {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5}
        other = {"workload": SYNTH_PAYLOAD, "tiles": 5, "iterations": 5}
        first = []

        def occupant():
            first.append(service.handle("/simulate", blocked))

        with state.compute_lock:
            thread = threading.Thread(target=occupant)
            thread.start()
            # The occupant holds the only admission slot (blocked on the
            # compute lock), so a *different* request must be shed.
            wait_until(lambda: state.pending == 1)
            status, body = service.handle("/simulate", other)
        thread.join(timeout=60)
        assert status == 429
        assert body["error"] == "overloaded"
        assert body["retry_after"] == 0.25
        assert state.shed_count == 1
        # The occupant finished normally once the lock freed up.
        assert first and first[0][0] == 200
        snapshot = service.metrics.snapshot()
        assert snapshot["endpoints"]["simulate"]["shed"] == 1

    def test_cache_hits_are_never_shed(self, tmp_path):
        """Memoized answers bypass the admission gate entirely."""
        state = ServiceState(cache_dir=tmp_path, max_pending=1)
        service = ReproService(state)
        payload = {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5}
        service.handle("/simulate", payload)
        # Saturate the gate, then replay the memoized point.
        with state.admission():
            status, body = service.handle("/simulate", payload)
        assert status == 200
        assert body["from_cache"] is True


class TestByteIdentity:
    def test_service_simulate_matches_cli_sweep_bytes(self):
        """Zero-noise service results are byte-identical to a CLI sweep."""
        point = make_point()
        engine_metrics = SweepEngine(max_workers=1).run([point]) \
            .outcomes[0].metrics

        service = ReproService(ServiceState())
        status, body = service.handle("/simulate", {
            "workload": SYNTH_PAYLOAD,
            "tiles": point.tile_count,
            "iterations": point.iterations,
            "seed": point.seed,
        })
        assert status == 200
        assert (dumps_canonical(body["metrics"])
                == dumps_canonical(metrics_to_dict(engine_metrics)))

    def test_warm_repeat_stays_byte_identical(self):
        """A warm-engine replay of the same point changes nothing."""
        service = ReproService(ServiceState())
        payload = {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5}
        _, first = service.handle("/simulate", payload)
        _, second = service.handle("/simulate", payload)
        assert (dumps_canonical(second["metrics"])
                == dumps_canonical(first["metrics"]))


@pytest.mark.slow
class TestDaemonLifecycle:
    def test_sigterm_is_a_clean_shutdown(self):
        """repro serve: readiness line, live requests, SIGTERM -> exit 0."""
        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=root,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("repro service listening on http://")
            port = int(line.rsplit(":", 1)[1])

            import urllib.request

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/schedule",
                data=json.dumps({"task": "jpeg_decoder"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                body = json.load(response)
            assert body["load_count"] > 0

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
