"""Tests for the service's warm state: admission, residency, counters."""

import threading

import pytest

from repro.runner import ApproachSpec, SweepPoint, WorkloadSpec
from repro.service import ServiceOverloaded, ServiceState, TASK_GRAPHS
from repro.service.state import DEFAULT_MAX_PENDING

#: Tiny synthetic workload shared by the service tests (fast to explore
#: and to simulate, same spirit as tests/runner/test_engine.py).
SYNTH_OPTIONS = dict(task_count=2, subtasks_per_task=5,
                     scenarios_per_task=2, seed=3)
ITERATIONS = 10


def synth_spec() -> WorkloadSpec:
    return WorkloadSpec.of("synthetic", **SYNTH_OPTIONS)


def make_point(**overrides) -> SweepPoint:
    fields = dict(
        workload=synth_spec(),
        approach=ApproachSpec.of("hybrid"),
        tile_count=4,
        seed=2005,
        iterations=ITERATIONS,
    )
    fields.update(overrides)
    return SweepPoint(**fields)


class TestAdmission:
    def test_defaults(self):
        state = ServiceState()
        assert state.max_pending == DEFAULT_MAX_PENDING
        assert state.pending == 0

    def test_slot_occupied_and_released(self):
        state = ServiceState(max_pending=2)
        with state.admission():
            assert state.pending == 1
            with state.admission():
                assert state.pending == 2
        assert state.pending == 0

    def test_sheds_past_max_pending(self):
        state = ServiceState(max_pending=1, shed_retry_after=2.5)
        with state.admission():
            with pytest.raises(ServiceOverloaded) as excinfo:
                with state.admission():
                    pass
        assert excinfo.value.retry_after == 2.5
        assert state.shed_count == 1
        # The shed attempt never occupied a slot.
        assert state.pending == 0

    def test_slot_released_on_error(self):
        state = ServiceState(max_pending=1)
        with pytest.raises(RuntimeError):
            with state.admission():
                raise RuntimeError("boom")
        with state.admission():
            assert state.pending == 1

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            ServiceState(max_pending=0)
        with pytest.raises(ValueError):
            ServiceState(max_explorations=0)


class TestResidentExplorations:
    def test_second_request_is_a_batch_hit(self):
        state = ServiceState()
        first = state.exploration_for(synth_spec(), 4)
        assert state.exploration_builds == 1
        second = state.exploration_for(synth_spec(), 4)
        assert second is first  # the same live trio, not a rebuild
        assert state.batch_hits == 1
        assert state.exploration_builds == 1

    def test_lru_evicts_oldest_platform(self):
        state = ServiceState(max_explorations=1)
        state.exploration_for(synth_spec(), 4)
        state.exploration_for(synth_spec(), 5)
        assert state.exploration_builds == 2
        # Platform 4 was evicted: asking again rebuilds it.
        state.exploration_for(synth_spec(), 4)
        assert state.exploration_builds == 3

    def test_exploration_memoized_on_disk_with_cache_dir(self, tmp_path):
        state = ServiceState(cache_dir=tmp_path)
        state.exploration_for(synth_spec(), 4)
        exploration_dir = tmp_path / "explorations"
        assert any(exploration_dir.glob("explore-*.json"))


class TestResidentSchedules:
    def test_same_core_returns_same_placed_schedule(self):
        state = ServiceState()
        first = state.placed_schedule_for("jpeg_decoder", 8, 4.0)
        second = state.placed_schedule_for("jpeg_decoder", 8, 4.0)
        assert second is first
        assert state.batch_hits == 1

    def test_unknown_task_is_a_bad_request(self):
        from repro.service import BadRequest

        state = ServiceState()
        with pytest.raises(BadRequest, match="unknown task"):
            state.placed_schedule_for("nope", 8, 4.0)

    def test_registry_covers_demo_tasks(self):
        assert set(TASK_GRAPHS) == {
            "pattern_recognition", "jpeg_decoder", "parallel_jpeg",
            "mpeg_encoder_b", "mpeg_encoder_p", "mpeg_encoder_i",
        }


class TestSimulatePath:
    def test_simulation_counted_and_cached(self, tmp_path):
        state = ServiceState(cache_dir=tmp_path)
        point = make_point()
        assert state.load_cached(point) is None
        with state.compute_lock:
            metrics = state.simulate_point(point)
        assert state.simulations == 1
        assert state.result_cache_stores == 1
        replay = state.load_cached(point)
        assert replay == metrics
        assert state.result_cache_hits == 1

    def test_without_cache_dir_nothing_is_memoized(self):
        state = ServiceState()
        point = make_point()
        assert state.load_cached(point) is None
        with state.compute_lock:
            state.simulate_point(point)
        assert state.load_cached(point) is None
        assert state.result_cache_stores == 0


class TestSnapshotsAndClose:
    def test_warm_snapshot_keys(self):
        state = ServiceState()
        snapshot = state.warm_snapshot()
        for key in ("batch_hits", "exploration_builds",
                    "resident_explorations", "resident_schedules",
                    "result_cache_hits", "simulations", "pool_hits",
                    "pool_misses", "pool_engines", "tt_warm_hits"):
            assert key in snapshot

    def test_admission_snapshot_tracks_pending(self):
        state = ServiceState(max_pending=3)
        with state.admission():
            snapshot = state.admission_snapshot()
        assert snapshot["pending"] == 1
        assert snapshot["max_pending"] == 3

    def test_close_drops_residency(self):
        state = ServiceState()
        state.exploration_for(synth_spec(), 4)
        state.placed_schedule_for("jpeg_decoder", 8, 4.0)
        state.close()
        snapshot = state.warm_snapshot()
        assert snapshot["resident_explorations"] == 0
        assert snapshot["resident_schedules"] == 0

    def test_state_is_shareable_across_threads(self):
        """Concurrent admissions on one state never corrupt the counter."""
        state = ServiceState(max_pending=64)
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(25):
                with state.admission():
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert state.pending == 0
        assert state.shed_count == 0
