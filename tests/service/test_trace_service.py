"""Trace workloads through the live service: registry-backed end to end.

The tentpole acceptance path: a registered ``"trace"`` workload must flow
through ``/simulate`` over real HTTP exactly like the built-in families,
and a trace stream replayed through the daemon must agree bit-for-bit
with the in-process sweep engine on every graph, while the daemon's warm
state (exploration LRU, scheduler pool) actually absorbs the repeats.
"""

import threading

import pytest

from repro.runner import (
    TraceStreamConfig,
    run_trace_stream,
    run_trace_stream_via_service,
)
from repro.service import (
    ReproService,
    ReproServiceServer,
    ServiceClient,
    ServiceRequestError,
    ServiceState,
)
from repro.workloads.traces import MixedPatternConfig, generate_mixed_trace

CONFIG = TraceStreamConfig(iterations=3, tile_count=4, subtasks=4)


@pytest.fixture()
def live_server():
    service = ReproService(ServiceState())
    server = ReproServiceServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture()
def client(live_server):
    return ServiceClient(port=live_server.server_address[1])


class TestTraceOverHttp:
    def test_simulate_trace_workload(self, client):
        body = client.simulate(
            workload={"name": "trace",
                      "options": {"graph_id": 3, "subtasks": 4}},
            approach="hybrid", tile_count=4, seed=2005, iterations=3,
        )
        assert body["from_cache"] is False
        assert body["metrics"]["iterations"] == 3
        # Without a cache directory repeats recompute (warm, not cached),
        # but determinism still pins the result bit-for-bit.
        repeat = client.simulate(
            workload={"name": "trace",
                      "options": {"graph_id": 3, "subtasks": 4}},
            approach="hybrid", tile_count=4, seed=2005, iterations=3,
        )
        assert repeat["metrics"] == body["metrics"]

    def test_unknown_workload_is_structured_400(self, client):
        with pytest.raises(ServiceRequestError) as excinfo:
            client.simulate(workload={"name": "ghost", "options": {}})
        assert excinfo.value.status == 400

    def test_unknown_task_is_structured_400(self, client):
        with pytest.raises(ServiceRequestError) as excinfo:
            client.schedule(task="ghost")
        assert excinfo.value.status == 400
        body = excinfo.value.body
        assert body["unknown_task"] == "ghost"
        assert "jpeg_decoder" in body["available_tasks"]


class TestStreamParity:
    def test_service_stream_matches_engine_stream(self, client):
        records = generate_mixed_trace(
            MixedPatternConfig(records=16, universe=5, seed=42, tenants=3))
        engine_result = run_trace_stream(records, CONFIG)
        service_result = run_trace_stream_via_service(records, CONFIG,
                                                      client)
        # Identical per-graph results, in identical arrival order.
        assert service_result.metrics == engine_result.metrics
        assert service_result.stats.records == 16
        assert service_result.stats.tenants == 3

    def test_daemon_warm_state_absorbs_repeats(self, client):
        records = generate_mixed_trace(
            MixedPatternConfig(records=16, universe=4, seed=7, tenants=2))
        result = run_trace_stream_via_service(records, CONFIG, client)
        warm = result.stats.warm
        assert warm["simulations"] > 0
        # Repeats of a graph id hit the daemon's exploration LRU instead
        # of re-exploring: the stream has far fewer distinct graphs than
        # arrivals, so warm hits must appear.
        assert warm["exploration_lru_hits"] > 0
        assert warm["exploration_lru_hit_rate"] > 0.0
        assert warm["pool_hits"] > 0

    def test_metrics_snapshot_exposes_lru_counters(self, client):
        client.simulate(
            workload={"name": "trace",
                      "options": {"graph_id": 0, "subtasks": 4}},
            approach="hybrid", tile_count=4, seed=2005, iterations=2,
        )
        warm = client.metrics()["warm"]
        for key in ("exploration_lru_hits", "exploration_lru_hit_rate",
                    "schedule_lru_hits", "pool_hits", "tt_warm_hits"):
            assert key in warm
