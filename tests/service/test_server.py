"""Tests for the service endpoints, payload parsing and the HTTP layer."""

import threading

import pytest

from repro.runner import ApproachSpec, WorkloadSpec
from repro.service import (
    BadRequest,
    ReproService,
    ReproServiceServer,
    ServiceClient,
    ServiceRequestError,
    ServiceState,
    point_from_payload,
)
from repro.service.server import approach_spec_from, workload_spec_from

from .test_state import ITERATIONS, SYNTH_OPTIONS

SYNTH_PAYLOAD = {"name": "synthetic", "options": dict(SYNTH_OPTIONS)}


@pytest.fixture()
def service() -> ReproService:
    return ReproService(ServiceState())


class TestPayloadParsing:
    def test_workload_by_name(self):
        assert workload_spec_from("multimedia") == WorkloadSpec.of(
            "multimedia")

    def test_workload_with_options(self):
        spec = workload_spec_from(SYNTH_PAYLOAD)
        assert spec == WorkloadSpec.of("synthetic", **SYNTH_OPTIONS)

    def test_approach_with_replacement(self):
        spec = approach_spec_from({"name": "hybrid", "replacement": "lru"})
        assert spec == ApproachSpec.of("hybrid", replacement="lru")

    def test_unknown_names_are_bad_requests(self):
        with pytest.raises(BadRequest):
            workload_spec_from({"options": {}})
        with pytest.raises(BadRequest):
            approach_spec_from({"name": "hybrid", "bogus": 1})

    def test_point_round_trips_defaults(self):
        point = point_from_payload({})
        assert point.workload.name == "multimedia"
        assert point.approach.name == "hybrid"
        assert point.tile_count == 8
        assert point.seed == 2005

    def test_tiles_alias(self):
        assert point_from_payload({"tiles": 6}).tile_count == 6
        with pytest.raises(BadRequest, match="not both"):
            point_from_payload({"tiles": 6, "tile_count": 6})

    def test_unknown_field_is_rejected(self):
        with pytest.raises(BadRequest, match="unknown simulate field"):
            point_from_payload({"bogus": 1})

    def test_perturbation_object(self):
        point = point_from_payload(
            {"perturbation": {"latency_sigma": 0.2}})
        assert point.perturbation is not None
        assert point.perturbation.latency_sigma == 0.2

    def test_null_perturbation_normalizes_to_none(self):
        point = point_from_payload(
            {"perturbation": {"latency_sigma": 0.0}})
        assert point.perturbation is None

    def test_bad_perturbation_field(self):
        with pytest.raises(BadRequest, match="bad perturbation"):
            point_from_payload({"perturbation": {"bogus": 1}})


class TestEndpoints:
    def test_healthz(self, service):
        status, body = service.handle("/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_endpoint_is_404(self, service):
        status, body = service.handle("/nope")
        assert status == 404
        assert "unknown endpoint" in body["error"]

    def test_non_object_body_is_400(self, service):
        status, body = service.handle("/simulate", [1, 2, 3])
        assert status == 400

    def test_schedule(self, service):
        status, body = service.handle("/schedule",
                                      {"task": "jpeg_decoder"})
        assert status == 200
        assert body["scheduler"] == "branch-and-bound"
        assert body["makespan"] >= body["ideal_makespan"]
        assert body["load_count"] == len(body["load_order"])
        assert body["stats"]["operations"] > 0

    def test_schedule_reused_ladder_hits_warm_engine(self, service):
        status, first = service.handle("/schedule",
                                       {"task": "jpeg_decoder"})
        assert status == 200
        pool = service.state.scheduler_pool
        misses_before = pool.pool_misses
        status, second = service.handle(
            "/schedule",
            {"task": "jpeg_decoder", "reused": first["load_order"][:1]},
        )
        assert status == 200
        # Same placed schedule -> same warm engine, no new engine built.
        assert pool.pool_misses == misses_before
        assert pool.pool_hits >= 1
        assert second["overhead"] <= first["overhead"]

    def test_schedule_unknown_task_is_400(self, service):
        status, body = service.handle("/schedule", {"task": "nope"})
        assert status == 400
        assert "unknown task" in body["error"]

    def test_schedule_unknown_reused_subtask_is_400(self, service):
        status, body = service.handle(
            "/schedule", {"task": "jpeg_decoder", "reused": ["ghost"]})
        assert status == 400

    def test_schedule_requires_task(self, service):
        status, body = service.handle("/schedule", {})
        assert status == 400
        assert "task" in body["error"]

    def test_simulate(self, service):
        status, body = service.handle(
            "/simulate",
            {"workload": SYNTH_PAYLOAD, "tiles": 4,
             "iterations": ITERATIONS},
        )
        assert status == 200
        assert body["from_cache"] is False
        assert body["metrics"]["iterations"] == ITERATIONS
        assert len(body["cache_key"]) == 64

    def test_simulate_cache_hit_with_cache_dir(self, tmp_path):
        service = ReproService(ServiceState(cache_dir=tmp_path))
        payload = {"workload": SYNTH_PAYLOAD, "tiles": 4,
                   "iterations": ITERATIONS}
        _, first = service.handle("/simulate", payload)
        _, second = service.handle("/simulate", payload)
        assert first["from_cache"] is False
        assert second["from_cache"] is True
        assert second["metrics"] == first["metrics"]

    def test_robustness(self, service):
        status, body = service.handle(
            "/robustness",
            {"workload": SYNTH_PAYLOAD, "tiles": 4, "iterations": 5,
             "levels": [0.0, 0.3], "seeds": [1, 2],
             "approaches": ["hybrid"]},
        )
        assert status == 200
        curve = body["curves"]["hybrid"]
        assert [row["level"] for row in curve] == [0.0, 0.3]
        assert all(row["count"] == 2 for row in curve)
        assert body["computed_points"] == 4

    def test_robustness_unknown_metric_is_400(self, service):
        status, body = service.handle(
            "/robustness", {"metric": "nope", "levels": [0.0],
                            "seeds": [1]})
        assert status == 400
        assert "unknown metric" in body["error"]

    def test_robustness_rejects_empty_axes(self, service):
        status, body = service.handle("/robustness", {"levels": []})
        assert status == 400

    def test_metrics_snapshot_shape(self, service):
        service.handle("/healthz")
        status, body = service.handle("/metrics")
        assert status == 200
        assert body["totals"]["requests"] >= 1
        assert "healthz" in body["endpoints"]
        assert "warm" in body and "admission" in body

    def test_latency_percentiles_appear_after_requests(self, service):
        service.handle("/schedule", {"task": "jpeg_decoder"})
        _, body = service.handle("/metrics")
        schedule = body["endpoints"]["schedule"]
        assert schedule["requests"] == 1
        assert schedule["p99_ms"] >= schedule["p50_ms"] >= 0.0


@pytest.fixture()
def live_server():
    """A real ThreadingHTTPServer on an ephemeral port."""
    service = ReproService(ServiceState())
    server = ReproServiceServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestHttpLayer:
    def test_client_round_trip(self, live_server):
        client = ServiceClient(port=live_server.server_address[1])
        assert client.healthz()["status"] == "ok"
        body = client.schedule(task="jpeg_decoder", tiles=8, latency=4.0)
        assert body["scheduler"] == "branch-and-bound"
        snapshot = client.metrics()
        assert snapshot["totals"]["requests"] >= 2

    def test_client_raises_on_error_status(self, live_server):
        client = ServiceClient(port=live_server.server_address[1])
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceRequestError) as excinfo:
            client.schedule(task="ghost")
        assert excinfo.value.status == 400

    def test_non_json_body_is_400(self, live_server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", live_server.server_address[1], timeout=10)
        try:
            connection.request(
                "POST", "/schedule", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()


class TestCliParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-pending", "3",
             "--max-explorations", "2", "--shed-retry-after", "0.5",
             "--cache-dir", "/tmp/x", "--no-tt-cache"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_pending == 3
        assert args.max_explorations == 2
        assert args.shed_retry_after == 0.5
        assert args.cache_dir == "/tmp/x"
        assert args.tt_cache is False

    def test_demo_registry_is_service_registry(self):
        from repro.cli import _DEMO_GRAPHS
        from repro.service import TASK_GRAPHS

        assert _DEMO_GRAPHS is TASK_GRAPHS
