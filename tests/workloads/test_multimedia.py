"""Calibration tests for the multimedia benchmark set (Table 1)."""

import random

import pytest

from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.noprefetch import OnDemandScheduler
from repro.scheduling.prefetch_bb import OptimalPrefetchScheduler
from repro.workloads.multimedia import (
    MultimediaWorkload,
    SECTION7_REFERENCE,
    TABLE1_REFERENCE,
    jpeg_decoder_graph,
    mpeg_encoder_graph,
    mpeg_encoder_task,
    multimedia_task_set,
    parallel_jpeg_graph,
    pattern_recognition_graph,
    pattern_recognition_task,
)

LATENCY = 4.0
PLATFORM = Platform(tile_count=8, reconfiguration_latency=LATENCY)


def measure(graph):
    placed = build_initial_schedule(graph, PLATFORM)
    problem = PrefetchProblem(placed, LATENCY)
    no_prefetch = OnDemandScheduler().schedule(problem)
    prefetch = OptimalPrefetchScheduler().schedule(problem)
    return placed.makespan, no_prefetch.overhead_percent, prefetch.overhead_percent


class TestSubtaskCounts:
    def test_counts_match_table1(self):
        assert len(pattern_recognition_graph()) == 6
        assert len(jpeg_decoder_graph()) == 4
        assert len(parallel_jpeg_graph()) == 8
        assert len(mpeg_encoder_graph("B")) == 5
        assert len(mpeg_encoder_graph("P")) == 5

    def test_mpeg_scenarios(self):
        task = mpeg_encoder_task()
        assert task.scenario_names == ["B", "P", "I"]
        assert sum(s.probability for s in task.scenarios) == pytest.approx(1.0)


class TestIdealTimes:
    @pytest.mark.parametrize("factory, expected", [
        (pattern_recognition_graph, 94.0),
        (jpeg_decoder_graph, 81.0),
        (parallel_jpeg_graph, 57.0),
    ])
    def test_ideal_time_matches_table1(self, factory, expected):
        graph = factory()
        placed = build_initial_schedule(graph, PLATFORM)
        assert placed.makespan == pytest.approx(expected)

    def test_mpeg_weighted_ideal_time(self):
        task = mpeg_encoder_task()
        assert task.average_ideal_time() == pytest.approx(
            TABLE1_REFERENCE["mpeg_encoder"].ideal_time_ms, abs=1.0
        )


class TestOverheadCalibration:
    """Measured overheads must stay close to the published Table 1 values."""

    @pytest.mark.parametrize("factory, name, tolerance", [
        (pattern_recognition_graph, "pattern_recognition", 2.0),
        (jpeg_decoder_graph, "jpeg_decoder", 2.0),
        (parallel_jpeg_graph, "parallel_jpeg", 5.0),
    ])
    def test_no_prefetch_overhead(self, factory, name, tolerance):
        _, overhead, _ = measure(factory())
        assert overhead == pytest.approx(
            TABLE1_REFERENCE[name].overhead_percent, abs=tolerance
        )

    @pytest.mark.parametrize("factory, name, tolerance", [
        (pattern_recognition_graph, "pattern_recognition", 1.5),
        (jpeg_decoder_graph, "jpeg_decoder", 1.5),
        (parallel_jpeg_graph, "parallel_jpeg", 1.5),
    ])
    def test_prefetch_overhead(self, factory, name, tolerance):
        _, _, prefetch = measure(factory())
        assert prefetch == pytest.approx(
            TABLE1_REFERENCE[name].prefetch_percent, abs=tolerance
        )

    def test_mpeg_scenario_average(self):
        task = mpeg_encoder_task()
        total_p = sum(s.probability for s in task.scenarios)
        ideal = overhead_time = prefetch_time = 0.0
        for scenario in task.scenarios:
            weight = scenario.probability / total_p
            scenario_ideal, ov, pf = measure(scenario.graph)
            ideal += weight * scenario_ideal
            overhead_time += weight * scenario_ideal * ov / 100.0
            prefetch_time += weight * scenario_ideal * pf / 100.0
        reference = TABLE1_REFERENCE["mpeg_encoder"]
        assert 100 * overhead_time / ideal == pytest.approx(
            reference.overhead_percent, abs=8.0
        )
        assert 100 * prefetch_time / ideal == pytest.approx(
            reference.prefetch_percent, abs=4.0
        )

    def test_prefetch_always_better_than_no_prefetch(self):
        for factory in (pattern_recognition_graph, jpeg_decoder_graph,
                        parallel_jpeg_graph):
            _, overhead, prefetch = measure(factory())
            assert prefetch < overhead


class TestTaskSetAndWorkload:
    def test_task_set_composition(self):
        task_set = multimedia_task_set()
        assert len(task_set) == 4
        assert task_set.scenario_count == 6
        # distinct configurations over the whole application
        assert len(task_set.configurations) == 22

    def test_workload_draws_vary(self):
        workload = MultimediaWorkload()
        rng = random.Random(0)
        draws = [tuple(i.task_name for i in workload.draw_instances(rng))
                 for _ in range(30)]
        assert len(set(draws)) > 1
        assert all(1 <= len(draw) <= 4 for draw in draws)

    def test_workload_no_duplicate_tasks_per_iteration(self):
        workload = MultimediaWorkload()
        rng = random.Random(1)
        for _ in range(50):
            names = [i.task_name for i in workload.draw_instances(rng)]
            assert len(names) == len(set(names))

    def test_workload_metadata(self):
        workload = MultimediaWorkload()
        assert workload.reconfiguration_latency == pytest.approx(4.0)
        assert workload.tile_counts == tuple(range(8, 17))
        assert not workload.sequence_lookahead
        assert "multimedia" in workload.describe()

    def test_min_tasks_per_iteration_validated(self):
        with pytest.raises(ValueError):
            MultimediaWorkload(min_tasks_per_iteration=0)

    def test_section7_reference_constants(self):
        assert SECTION7_REFERENCE["no_prefetch_percent"] == pytest.approx(23.0)
        assert SECTION7_REFERENCE["design_time_prefetch_percent"] == \
            pytest.approx(7.0)

    def test_pattern_recognition_task_wrapper(self):
        task = pattern_recognition_task()
        assert task.scenario_names == ["default"]
        assert len(task.scenario("default").graph) == 6
