"""Tests for the unified workload registry.

The registry is the single source of truth behind ``WorkloadSpec.build()``
and the service's task-graph lookup; these tests pin the public contract:
decorator registration, option-schema validation, the spec round-trip
(register -> ``WorkloadSpec.of`` -> ``build`` -> ``workload_spec_for`` ->
same spec) and the deprecated alias views.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.graphs.taskgraph import chain_graph
from repro.runner.spec import (
    WORKLOAD_FACTORIES,
    WorkloadSpec,
    workload_spec_for,
)
from repro.workloads import registry
from repro.workloads.base import Workload
from repro.workloads.multimedia import MultimediaWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.traces import TraceWorkload


@pytest.fixture()
def scratch_workload():
    """Register a throwaway workload family; always unregister after."""
    name = "scratch-registry-test"

    @registry.register_workload(
        name,
        options_schema={"reconfiguration_latency": float,
                        "min_tasks_per_iteration": int},
        instance_class=None,
    )
    def build(**options):
        return MultimediaWorkload(**options)

    try:
        yield name
    finally:
        registry.unregister_workload(name)


class TestRegistration:
    def test_builtin_families_are_registered(self):
        for name in ("multimedia", "pocketgl", "synthetic", "trace"):
            assert registry.has_workload(name)
            assert name in registry.workload_names()

    def test_duplicate_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register_workload("multimedia")(MultimediaWorkload)

    def test_scratch_register_build_unregister(self, scratch_workload):
        workload = registry.build_workload(scratch_workload,
                                           reconfiguration_latency=2.0)
        assert isinstance(workload, MultimediaWorkload)
        assert workload.reconfiguration_latency == 2.0

    def test_unregister_removes_lookup(self):
        registry.register_workload("ghost-family")(lambda: None)
        registry.unregister_workload("ghost-family")
        assert not registry.has_workload("ghost-family")
        with pytest.raises(ConfigurationError, match="unknown workload"):
            registry.build_workload("ghost-family")

    def test_unknown_workload_lists_available(self):
        with pytest.raises(ConfigurationError) as excinfo:
            registry.build_workload("nope")
        assert "unknown workload 'nope'" in str(excinfo.value)
        assert "multimedia" in str(excinfo.value)


class TestOptionValidation:
    def test_unknown_option_names_allowed_set(self):
        with pytest.raises(ConfigurationError, match="has no option"):
            registry.validate_options("multimedia", {"bogus": 1})

    def test_int_satisfies_float_schema(self):
        registry.validate_options("multimedia",
                                  {"reconfiguration_latency": 4})

    def test_bool_never_satisfies_numeric_schema(self):
        with pytest.raises(ConfigurationError):
            registry.validate_options("multimedia",
                                      {"reconfiguration_latency": True})

    def test_type_mismatch_is_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.validate_options("synthetic", {"task_count": "five"})

    def test_optional_field_accepts_none(self):
        registry.validate_options("synthetic",
                                  {"tasks_per_iteration": None})


class TestSpecRoundTrip:
    """register -> WorkloadSpec.of -> build -> workload_spec_for -> same."""

    @pytest.mark.parametrize("spec", [
        WorkloadSpec.of("multimedia"),
        WorkloadSpec.of("multimedia", reconfiguration_latency=2.5,
                        min_tasks_per_iteration=3),
        WorkloadSpec.of("pocketgl", reconfiguration_latency=3.0,
                        inter_task_scenarios=4),
        WorkloadSpec.of("synthetic", task_count=3, subtasks_per_task=4,
                        scenarios_per_task=2, granularity=2.5,
                        reconfiguration_latency=4.0,
                        tasks_per_iteration=2, seed=7),
        WorkloadSpec.of("trace", graph_id=5, trace_seed=1, subtasks=5,
                        scenarios=2, granularity=3.0,
                        reconfiguration_latency=4.0),
    ])
    def test_round_trip(self, spec):
        workload = spec.build()
        resolved = workload_spec_for(workload)
        assert resolved is not None
        assert resolved.name == spec.name
        # The resolved spec carries every constructor option explicitly,
        # so rebuilding it yields the same workload family and options.
        rebuilt = resolved.build()
        assert type(rebuilt) is type(workload)
        assert workload_spec_for(rebuilt) == resolved

    @given(graph_id=st.integers(min_value=0, max_value=500),
           subtasks=st.integers(min_value=1, max_value=12),
           trace_seed=st.integers(min_value=0, max_value=50))
    def test_trace_round_trip_property(self, graph_id, subtasks,
                                       trace_seed):
        spec = WorkloadSpec.of("trace", graph_id=graph_id,
                               trace_seed=trace_seed, subtasks=subtasks,
                               scenarios=2, granularity=3.0,
                               reconfiguration_latency=4.0)
        resolved = workload_spec_for(spec.build())
        assert resolved == spec

    def test_subclass_instances_resolve_to_none(self):
        class Sub(TraceWorkload):
            pass

        assert workload_spec_for(Sub(graph_id=0)) is None

    def test_unregistered_instance_resolves_to_none(self):
        class Alien(Workload):
            def draw_instances(self, rng):  # pragma: no cover
                return []

        assert registry.spec_for_instance(Alien.__new__(Alien)) is None

    def test_synthetic_spec_survives_exactly(self):
        spec = WorkloadSpec.of("synthetic", task_count=2,
                               subtasks_per_task=3, scenarios_per_task=2,
                               granularity=3.0,
                               reconfiguration_latency=4.0,
                               tasks_per_iteration=None, seed=11)
        workload = spec.build()
        assert isinstance(workload, SyntheticWorkload)
        assert workload_spec_for(workload) == spec


class TestTaskGraphs:
    def test_demo_graphs_are_registered(self):
        expected = {"pattern_recognition", "jpeg_decoder", "parallel_jpeg",
                    "mpeg_encoder_b", "mpeg_encoder_p", "mpeg_encoder_i"}
        assert expected <= set(registry.task_graph_names())

    def test_build_task_graph(self):
        graph = registry.build_task_graph("jpeg_decoder")
        assert len(graph) > 0

    def test_unknown_task_graph(self):
        with pytest.raises(ConfigurationError, match="unknown task"):
            registry.build_task_graph("ghost")

    def test_scratch_task_graph_register_unregister(self):
        registry.register_task_graph("scratch-graph")(
            lambda: chain_graph("scratch", [10.0, 12.0]))
        try:
            assert registry.has_task_graph("scratch-graph")
            assert len(registry.build_task_graph("scratch-graph")) == 2
        finally:
            registry.unregister_task_graph("scratch-graph")
        assert not registry.has_task_graph("scratch-graph")


class TestDeprecatedAliases:
    def test_workload_factories_is_live_view(self, scratch_workload):
        assert scratch_workload in WORKLOAD_FACTORIES
        factory = WORKLOAD_FACTORIES[scratch_workload]
        assert isinstance(factory(), MultimediaWorkload)

    def test_task_graphs_view_matches_registry(self):
        from repro.service.state import TASK_GRAPHS

        assert set(TASK_GRAPHS) == set(registry.task_graph_names())
        assert TASK_GRAPHS is registry.TASK_GRAPHS

    def test_views_are_read_only(self):
        with pytest.raises(TypeError):
            registry.TASK_GRAPHS["x"] = lambda: None
