"""Tests for the trace format, the mixed-pattern generator and TraceWorkload."""

import random

import pytest

from repro.workloads.traces import (
    DEFAULT_TRACE_SUBTASKS,
    MAX_TRACE_SUBTASKS,
    MixedPatternConfig,
    TraceFormatError,
    TraceRecord,
    TraceWorkload,
    format_trace,
    generate_mixed_trace,
    parse_trace,
    parse_trace_line,
    read_trace,
    write_trace,
)
from repro.errors import WorkloadError


class TestParser:
    def test_minimal_record(self):
        record = parse_trace_line('{"timestamp": 1.5, "task": 3}')
        assert record == TraceRecord(timestamp=1.5, graph_id=3)
        assert record.tenant == "default"

    def test_full_record(self):
        record = parse_trace_line(
            '{"timestamp": 2, "task": "7", "size": 5, "deps": [3],'
            ' "tenant": "t1"}'
        )
        assert record.graph_id == 7
        assert record.size == 5
        assert record.deps == (3,)
        assert record.tenant == "t1"
        assert isinstance(record.timestamp, float)

    @pytest.mark.parametrize("line,fragment", [
        ("not json", "not valid JSON"),
        ("[1, 2]", "must be a JSON object"),
        ('{"timestamp": 1}', "missing required fields"),
        ('{"task": 1}', "missing required fields"),
        ('{"timestamp": 1, "task": 1, "bogus": 2}', "unknown fields"),
        ('{"timestamp": -1, "task": 1}', "non-negative"),
        ('{"timestamp": true, "task": 1}', "must be a number"),
        ('{"timestamp": 1, "task": -2}', "non-negative"),
        ('{"timestamp": 1, "task": "x"}', "non-negative integer"),
        ('{"timestamp": 1, "task": true}', "non-negative integer"),
        ('{"timestamp": 1, "task": 1, "size": 0}', "size must lie"),
        ('{"timestamp": 1, "task": 1, "size": 999}', "size must lie"),
        ('{"timestamp": 1, "task": 1, "size": 2.5}', "size must be"),
        ('{"timestamp": 1, "task": 1, "deps": 3}', "deps must be a list"),
        ('{"timestamp": 1, "task": 1, "tenant": ""}', "non-empty string"),
    ])
    def test_malformed_records_are_rejected(self, line, fragment):
        with pytest.raises(TraceFormatError, match=fragment):
            parse_trace_line(line)

    def test_errors_carry_line_numbers(self):
        lines = ['{"timestamp": 1, "task": 1}', "garbage"]
        with pytest.raises(TraceFormatError, match="trace line 2"):
            parse_trace(lines)

    def test_blank_lines_are_skipped(self):
        lines = ["", '{"timestamp": 1, "task": 1}', "   ", ""]
        assert len(parse_trace(lines)) == 1

    def test_decreasing_timestamps_are_rejected(self):
        lines = ['{"timestamp": 2, "task": 1}',
                 '{"timestamp": 1, "task": 2}']
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            parse_trace(lines)

    def test_unseen_dep_is_rejected(self):
        with pytest.raises(TraceFormatError, match="not seen earlier"):
            parse_trace(['{"timestamp": 1, "task": 1, "deps": [9]}'])

    def test_one_id_one_size(self):
        lines = ['{"timestamp": 1, "task": 1, "size": 4}',
                 '{"timestamp": 2, "task": 1, "size": 5}']
        with pytest.raises(TraceFormatError, match="changed size"):
            parse_trace(lines)

    def test_size_can_be_filled_in_later(self):
        lines = ['{"timestamp": 1, "task": 1}',
                 '{"timestamp": 2, "task": 1, "size": 5}',
                 '{"timestamp": 3, "task": 1, "size": 5}']
        assert len(parse_trace(lines)) == 3


class TestRoundTrip:
    def test_format_parse_round_trip(self):
        records = [
            TraceRecord(timestamp=0.5, graph_id=1),
            TraceRecord(timestamp=1.0, graph_id=2, size=7, deps=(1,),
                        tenant="t3"),
        ]
        text = format_trace(records)
        assert parse_trace(text.splitlines()) == records

    def test_file_round_trip(self, tmp_path):
        records = generate_mixed_trace(
            MixedPatternConfig(records=25, universe=8, seed=3, tenants=2))
        path = tmp_path / "trace.jsonl"
        write_trace(records, path)
        assert read_trace(path) == records

    def test_defaults_are_omitted_from_payload(self):
        payload = TraceRecord(timestamp=1.0, graph_id=2).payload()
        assert payload == {"timestamp": 1.0, "task": 2}


class TestGenerator:
    def test_same_config_same_bytes(self):
        config = MixedPatternConfig(records=60, universe=16, seed=11,
                                    tenants=3, size_range=(3, 8))
        first = format_trace(generate_mixed_trace(config))
        second = format_trace(generate_mixed_trace(config))
        assert first == second

    def test_different_seed_different_stream(self):
        base = MixedPatternConfig(records=60, universe=16, seed=11)
        other = MixedPatternConfig(records=60, universe=16, seed=12)
        assert generate_mixed_trace(base) != generate_mixed_trace(other)

    def test_output_satisfies_stream_invariants(self):
        config = MixedPatternConfig(records=120, universe=10, seed=5,
                                    tenants=4, size_range=(2, 6),
                                    dep_probability=0.5)
        records = generate_mixed_trace(config)
        assert len(records) == 120
        # Re-parsing its own serialization exercises every invariant:
        # timestamps non-decreasing, deps seen earlier, one id one size.
        assert parse_trace(format_trace(records).splitlines()) == records

    def test_tenants_interleave(self):
        config = MixedPatternConfig(records=80, universe=12, seed=9,
                                    tenants=4)
        records = generate_mixed_trace(config)
        tenants = [record.tenant for record in records]
        assert set(tenants) == {"t0", "t1", "t2", "t3"}
        # The merge interleaves: the stream is not sorted by tenant.
        assert tenants != sorted(tenants)

    def test_single_tenant_uses_default_label(self):
        records = generate_mixed_trace(
            MixedPatternConfig(records=10, universe=4, seed=1))
        assert {record.tenant for record in records} == {"default"}

    def test_ids_stay_inside_universe(self):
        records = generate_mixed_trace(
            MixedPatternConfig(records=200, universe=7, seed=2))
        assert all(0 <= record.graph_id < 7 for record in records)

    @pytest.mark.parametrize("kwargs", [
        {"records": 0},
        {"universe": 0},
        {"tenants": 0},
        {"run_length": (5, 2)},
        {"short_jump_span": 0},
        {"sequential_weight": -1.0},
        {"sequential_weight": 0.0, "short_jump_weight": 0.0,
         "long_jump_weight": 0.0},
        {"mean_interarrival": 0.0},
        {"dep_probability": 1.5},
        {"size_range": (0, 4)},
        {"size_range": (4, MAX_TRACE_SUBTASKS + 1)},
    ])
    def test_bad_config_is_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            MixedPatternConfig(**kwargs)


class TestTraceWorkload:
    def test_same_id_same_graph(self):
        first = TraceWorkload(graph_id=3, trace_seed=7)
        second = TraceWorkload(graph_id=3, trace_seed=7)
        graph_a = first.task_set.tasks[0].scenarios[0].graph
        graph_b = second.task_set.tasks[0].scenarios[0].graph
        assert [s.name for s in graph_a] == [s.name for s in graph_b]
        assert [s.execution_time for s in graph_a] == \
            [s.execution_time for s in graph_b]

    def test_different_id_different_graph(self):
        first = TraceWorkload(graph_id=3)
        second = TraceWorkload(graph_id=4)
        times_a = [s.execution_time
                   for s in first.task_set.tasks[0].scenarios[0].graph]
        times_b = [s.execution_time
                   for s in second.task_set.tasks[0].scenarios[0].graph]
        assert times_a != times_b

    def test_instance_name_carries_graph_id(self):
        assert TraceWorkload(graph_id=17).name == "trace_g17"

    def test_default_size(self):
        workload = TraceWorkload(graph_id=0)
        graph = workload.task_set.tasks[0].scenarios[0].graph
        assert len(graph) == DEFAULT_TRACE_SUBTASKS

    def test_draw_instances_is_deterministic(self):
        workload = TraceWorkload(graph_id=1, scenarios=3)
        names_a = [instance.scenario.name for instance
                   in workload.draw_instances(random.Random(5))]
        names_b = [instance.scenario.name for instance
                   in workload.draw_instances(random.Random(5))]
        assert names_a == names_b
        assert len(names_a) == 1

    @pytest.mark.parametrize("kwargs", [
        {"graph_id": -1},
        {"graph_id": 0, "subtasks": 0},
        {"graph_id": 0, "subtasks": MAX_TRACE_SUBTASKS + 1},
        {"graph_id": 0, "scenarios": 0},
        {"graph_id": 0, "granularity": 0.0},
    ])
    def test_bad_options_are_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            TraceWorkload(**kwargs)
