"""Unit tests for the synthetic workloads."""

import random

import pytest

from repro.errors import WorkloadError
from repro.graphs.validation import validate_graph
from repro.workloads.synthetic import (
    SyntheticSpec,
    SyntheticWorkload,
    scalability_graphs,
    synthetic_task,
    synthetic_task_set,
)


class TestSyntheticSpec:
    def test_defaults_valid(self):
        spec = SyntheticSpec()
        assert spec.task_count == 4

    def test_invalid_values_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticSpec(task_count=0)
        with pytest.raises(WorkloadError):
            SyntheticSpec(subtasks_per_task=0)
        with pytest.raises(WorkloadError):
            SyntheticSpec(scenarios_per_task=0)
        with pytest.raises(WorkloadError):
            SyntheticSpec(granularity=0.0)
        with pytest.raises(WorkloadError):
            SyntheticSpec(tasks_per_iteration=9, task_count=4)


class TestGeneration:
    def test_task_structure(self):
        spec = SyntheticSpec(task_count=3, subtasks_per_task=6,
                             scenarios_per_task=2, seed=1)
        task = synthetic_task(spec, 0)
        assert len(task) == 2
        for scenario in task:
            assert len(scenario.graph) == 6
            assert validate_graph(scenario.graph).is_valid

    def test_scenarios_share_configurations(self):
        spec = SyntheticSpec(scenarios_per_task=3, seed=2)
        task = synthetic_task(spec, 1)
        reference = set(task.scenarios[0].graph.configurations)
        for scenario in task:
            assert set(scenario.graph.configurations) == reference

    def test_task_set_size(self):
        spec = SyntheticSpec(task_count=5, seed=3)
        task_set = synthetic_task_set(spec)
        assert len(task_set) == 5

    def test_determinism(self):
        spec = SyntheticSpec(seed=9)
        a = synthetic_task_set(spec)
        b = synthetic_task_set(spec)
        for task_a, task_b in zip(a, b):
            for scenario_a, scenario_b in zip(task_a, task_b):
                assert scenario_a.graph.total_execution_time == pytest.approx(
                    scenario_b.graph.total_execution_time
                )

    def test_workload_draws(self):
        workload = SyntheticWorkload(SyntheticSpec(task_count=3, seed=4))
        rng = random.Random(0)
        for _ in range(10):
            instances = workload.draw_instances(rng)
            assert 1 <= len(instances) <= 3

    def test_fixed_tasks_per_iteration(self):
        workload = SyntheticWorkload(
            SyntheticSpec(task_count=4, tasks_per_iteration=2, seed=5)
        )
        rng = random.Random(0)
        assert all(len(workload.draw_instances(rng)) == 2 for _ in range(10))


class TestScalabilityGraphs:
    def test_exact_sizes(self):
        graphs = scalability_graphs([5, 10, 20], seed=6)
        assert [len(g) for g in graphs] == [5, 10, 20]

    def test_graphs_valid(self):
        for graph in scalability_graphs([8, 16], seed=7):
            assert validate_graph(graph).is_valid

    def test_granularity_scales_times(self):
        fine = scalability_graphs([10], seed=8, granularity=1.0)[0]
        coarse = scalability_graphs([10], seed=8, granularity=5.0)[0]
        assert coarse.total_execution_time > fine.total_execution_time
