"""Calibration tests for the Pocket GL 3D-rendering workload (Figure 7)."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.pocketgl import (
    POCKETGL_REFERENCE,
    PocketGLWorkload,
    feasible_intertask_scenarios,
    pocketgl_task,
    pocketgl_task_set,
)


class TestPublishedCharacteristics:
    def test_task_and_subtask_counts(self):
        task_set = pocketgl_task_set()
        assert len(task_set) == POCKETGL_REFERENCE["tasks"]
        assert len(task_set.configurations) == POCKETGL_REFERENCE["subtasks"]

    def test_total_scenario_count(self):
        task_set = pocketgl_task_set()
        assert task_set.scenario_count == POCKETGL_REFERENCE["scenarios"]

    def test_task4_has_ten_scenarios_task5_has_four(self):
        assert len(pocketgl_task("texture")) == 10
        assert len(pocketgl_task("fragment")) == 4

    def test_average_subtask_time_near_published_mean(self):
        workload = PocketGLWorkload()
        assert workload.average_subtask_time() == pytest.approx(
            POCKETGL_REFERENCE["average_subtask_time_ms"], abs=1.0
        )

    def test_subtask_time_range(self):
        workload = PocketGLWorkload()
        times = [subtask.execution_time
                 for task in workload.task_set
                 for scenario in task
                 for subtask in scenario.graph]
        assert min(times) >= POCKETGL_REFERENCE["min_subtask_time_ms"] - 1e-9
        assert max(times) <= POCKETGL_REFERENCE["max_subtask_time_ms"] + 1e-9
        # The execution times genuinely vary ("heavily varies").
        assert max(times) / min(times) > 10

    def test_twenty_intertask_scenarios(self):
        combos = feasible_intertask_scenarios()
        assert len(combos) == POCKETGL_REFERENCE["inter_task_scenarios"]
        # Each combo assigns a scenario to every task and all are distinct.
        keys = {tuple(sorted(combo.items())) for combo in combos}
        assert len(keys) == len(combos)
        for combo in combos:
            assert set(combo) == {name for name, _ in
                                  [("geometry", None), ("clipping", None),
                                   ("rasterizer", None), ("texture", None),
                                   ("fragment", None), ("display", None)]}

    def test_unknown_task_rejected(self):
        with pytest.raises(WorkloadError):
            pocketgl_task("teapot")


class TestDynamicBehaviour:
    def test_draw_executes_full_pipeline(self):
        workload = PocketGLWorkload()
        instances = workload.draw_instances(random.Random(0))
        assert [i.task_name for i in instances] == [
            "geometry", "clipping", "rasterizer", "texture", "fragment",
            "display",
        ]

    def test_draw_uses_feasible_combinations_only(self):
        workload = PocketGLWorkload()
        rng = random.Random(1)
        allowed = {tuple(sorted(combo.items()))
                   for combo in workload.inter_task_scenarios}
        for _ in range(40):
            instances = workload.draw_instances(rng)
            combo = tuple(sorted((i.task_name, i.scenario_name)
                                 for i in instances))
            assert combo in allowed

    def test_scenarios_share_configurations(self):
        task = pocketgl_task("geometry")
        configurations = {tuple(s.graph.configurations) for s in task}
        assert len(configurations) == 1

    def test_scenario_times_vary(self):
        task = pocketgl_task("geometry")
        times = {round(s.graph.total_execution_time, 3) for s in task}
        assert len(times) > 1

    def test_workload_metadata(self):
        workload = PocketGLWorkload()
        assert workload.sequence_lookahead
        assert workload.tile_counts == tuple(range(5, 11))
        assert workload.configuration_count == 10

    def test_determinism(self):
        first = PocketGLWorkload()
        second = PocketGLWorkload()
        for task_name in ("geometry", "texture"):
            a = first.task_set.task(task_name)
            b = second.task_set.task(task_name)
            for scenario_a, scenario_b in zip(a, b):
                assert scenario_a.graph.total_execution_time == pytest.approx(
                    scenario_b.graph.total_execution_time
                )
