"""Package-level sanity checks (public API surface, errors, version)."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_end_to_end_via_top_level_api(self):
        """The README quickstart flow works from the top-level namespace."""
        graph = repro.TaskGraph("quick")
        graph.add_subtask(repro.Subtask("a", 10.0))
        graph.add_subtask(repro.Subtask("b", 8.0))
        graph.add_dependency("a", "b")
        platform = repro.virtex2_platform(tile_count=4)
        placed = repro.build_initial_schedule(graph, platform)
        problem = repro.PrefetchProblem(placed, 4.0)
        result = repro.OptimalPrefetchScheduler().schedule(problem)
        assert result.overhead == pytest.approx(4.0)
        heuristic = repro.HybridPrefetchHeuristic(4.0)
        entry = heuristic.design_time(placed, "quick")
        execution = heuristic.run_time(entry, reusable=entry.critical_subtasks)
        assert execution.overhead == pytest.approx(0.0)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError)

    def test_specific_hierarchy(self):
        assert issubclass(errors.CycleError, errors.GraphError)
        assert issubclass(errors.InfeasibleScheduleError, errors.SchedulingError)
        assert issubclass(errors.UnknownSubtaskError, errors.GraphError)
        assert issubclass(errors.DuplicateSubtaskError, errors.GraphError)

    def test_catching_base_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("boom")
