"""The pluggable storage backend: primitives and store integration.

Two layers: :class:`~repro.storage.LocalDirBackend` must honour the
:class:`~repro.storage.Backend` contract exactly (exclusive creation is a
true test-and-set, replace fails when the source vanished, stats never
raise), and every fabric store must accept an explicit backend and behave
identically to its historical path-based construction.
"""

import json
import os
import time

import pytest

from repro.storage import (
    Backend,
    EntryStat,
    LocalDirBackend,
    TEMP_PATTERN,
    as_backend,
    backend_root,
    list_entries,
    sweep_aged,
)


class TestLocalDirBackend:
    def test_round_trip_and_listing(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("a.json", {"x": 1})
        backend.write_json_atomic("b.json", {"x": 2})
        assert backend.list("*.json") == ["a.json", "b.json"]
        assert json.loads(backend.read_text("a.json")) == {"x": 1}
        # The atomic writer leaves no temp debris behind.
        assert backend.list(TEMP_PATTERN) == []

    def test_read_missing_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            LocalDirBackend(tmp_path).read_text("absent.json")

    def test_stat_reports_size_and_mtime(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("a.json", {"x": 1})
        stat = backend.stat("a.json")
        assert isinstance(stat, EntryStat)
        assert stat.size == (tmp_path / "a.json").stat().st_size
        assert backend.stat("absent.json") is None

    def test_create_exclusive_is_test_and_set(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert backend.create_exclusive("lock", "one")
        assert not backend.create_exclusive("lock", "two")
        assert (tmp_path / "lock").read_text() == "one"

    def test_create_exclusive_propagates_real_failures(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "sub")
        (tmp_path / "sub").chmod(0o500)
        try:
            if os.geteuid() == 0:
                pytest.skip("root ignores directory permissions")
            with pytest.raises(OSError):
                backend.create_exclusive("lock", "one")
        finally:
            (tmp_path / "sub").chmod(0o700)

    def test_replace_fails_when_source_vanished(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert backend.create_exclusive("lock", "one")
        assert backend.replace("lock", "tomb")
        assert not backend.replace("lock", "tomb-again")  # source gone
        assert backend.list("tomb*") == ["tomb"]

    def test_delete_and_touch_report_absence(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert backend.create_exclusive("lock", "one")
        before = backend.stat("lock").mtime
        os.utime(tmp_path / "lock", (before - 100, before - 100))
        assert backend.touch("lock")
        assert backend.stat("lock").mtime > before - 100
        assert backend.delete("lock")
        assert not backend.delete("lock")
        assert not backend.touch("lock")

    def test_listing_is_rooted_and_file_only(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("a.json", {})
        child = backend.child("nested")
        child.write_json_atomic("b.json", {})
        assert backend.list("*.json") == ["a.json"]  # no dirs, no recursion
        assert child.list("*.json") == ["b.json"]
        assert backend_root(child) == tmp_path / "nested"

    def test_as_backend_wraps_paths_and_passes_backends(self, tmp_path):
        wrapped = as_backend(tmp_path)
        assert isinstance(wrapped, LocalDirBackend)
        assert isinstance(wrapped, Backend)
        assert as_backend(wrapped) is wrapped

    def test_sweep_aged_removes_only_old_entries(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("old.json", {})
        backend.write_json_atomic("new.json", {})
        stale = time.time() - 120.0
        os.utime(tmp_path / "old.json", (stale, stale))
        files, freed = sweep_aged(backend, "*.json", max_age=60.0)
        assert files == 1 and freed > 0
        assert backend.list("*.json") == ["new.json"]

    def test_sweep_aged_dry_run_keeps_files(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("old.json", {})
        stale = time.time() - 120.0
        os.utime(tmp_path / "old.json", (stale, stale))
        files, _ = sweep_aged(backend, "*.json", max_age=60.0, dry_run=True)
        assert files == 1
        assert backend.list("*.json") == ["old.json"]

    def test_list_entries_stats_everything(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.write_json_atomic("a.json", {"x": 1})
        entries = list_entries(backend, "*.json")
        assert [name for name, _ in entries] == ["a.json"]
        assert all(isinstance(stat, EntryStat) for _, stat in entries)


class TestStoresAcceptExplicitBackends:
    def test_result_cache_on_backend(self, tmp_path):
        from repro.runner import ResultCache
        from tests.runner.test_cache import make_metrics, make_point

        cache = ResultCache(LocalDirBackend(tmp_path))
        point, metrics = make_point(), make_metrics()
        assert cache.load(point) is None
        cache.store(point, metrics)
        assert cache.load(point) == metrics
        assert len(cache) == 1
        # Path-based construction sees the very same entries.
        assert ResultCache(tmp_path).load(point) == metrics

    def test_claim_directory_on_backend(self, tmp_path):
        from repro.runner import ClaimDirectory

        backend = LocalDirBackend(tmp_path)
        alice = ClaimDirectory(backend, worker_id="alice")
        bob = ClaimDirectory(tmp_path, worker_id="bob")
        assert alice.acquire("group-1")
        assert not bob.acquire("group-1")
        assert bob.held_keys() == ["group-1"]

    def test_ttstore_on_backend(self, tmp_path):
        from repro.scheduling.ttstore import TranspositionStore

        store = TranspositionStore(LocalDirBackend(tmp_path))
        assert len(store) == 0
        assert store.directory == tmp_path
