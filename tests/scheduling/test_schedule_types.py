"""Unit tests for the schedule data structures."""

import pytest

from repro.errors import SchedulingError, UnknownSubtaskError
from repro.graphs.subtask import drhw_subtask
from repro.graphs.taskgraph import TaskGraph
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.schedule import (
    PlacedSchedule,
    PlacedSubtask,
    ResourceId,
    ResourceKind,
    isp_resource,
    tile_resource,
)


class TestResourceId:
    def test_tile_resource(self):
        resource = tile_resource(3)
        assert resource.kind is ResourceKind.TILE
        assert resource.is_tile
        assert str(resource) == "tile3"

    def test_isp_resource(self):
        resource = isp_resource(0)
        assert not resource.is_tile
        assert str(resource) == "isp0"

    def test_ordering_and_hashing(self):
        assert tile_resource(0) == tile_resource(0)
        assert len({tile_resource(0), tile_resource(0), tile_resource(1)}) == 2


def _manual_schedule():
    graph = TaskGraph("manual")
    graph.add_subtask(drhw_subtask("a", 5.0))
    graph.add_subtask(drhw_subtask("b", 3.0))
    graph.add_dependency("a", "b")
    placements = {
        "a": PlacedSubtask("a", tile_resource(0), 0.0, 5.0),
        "b": PlacedSubtask("b", tile_resource(0), 5.0, 8.0),
    }
    return graph, placements


class TestPlacedScheduleValidation:
    def test_valid_manual_schedule(self):
        graph, placements = _manual_schedule()
        placed = PlacedSchedule(graph, placements)
        assert placed.makespan == pytest.approx(8.0)
        assert placed.previous_on_resource("b") == "a"
        assert placed.previous_on_resource("a") is None
        assert placed.position_on_resource("b") == 1

    def test_missing_placement_rejected(self):
        graph, placements = _manual_schedule()
        del placements["b"]
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_unknown_placement_rejected(self):
        graph, placements = _manual_schedule()
        placements["ghost"] = PlacedSubtask("ghost", tile_resource(1), 0.0, 1.0)
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_dependency_violation_rejected(self):
        graph, placements = _manual_schedule()
        placements["b"] = PlacedSubtask("b", tile_resource(1), 2.0, 5.0)
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_resource_overlap_rejected(self):
        graph, placements = _manual_schedule()
        placements["b"] = PlacedSubtask("b", tile_resource(0), 4.0, 7.0)
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_wrong_duration_rejected(self):
        graph, placements = _manual_schedule()
        placements["a"] = PlacedSubtask("a", tile_resource(0), 0.0, 6.0)
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_wrong_resource_kind_rejected(self):
        graph, placements = _manual_schedule()
        placements["a"] = PlacedSubtask("a", isp_resource(0), 0.0, 5.0)
        placements["b"] = PlacedSubtask("b", tile_resource(0), 5.0, 8.0)
        with pytest.raises(SchedulingError):
            PlacedSchedule(graph, placements)

    def test_unknown_subtask_lookup(self):
        graph, placements = _manual_schedule()
        placed = PlacedSchedule(graph, placements)
        with pytest.raises(UnknownSubtaskError):
            placed.placement("ghost")


class TestPlacedScheduleQueries:
    def test_first_on_tile(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        first = placed.first_on_tile()
        # Every used tile has exactly one first subtask and "src" is first
        # somewhere (it starts at time zero).
        assert "src" in first.values()
        assert len(first) == len(placed.tiles_used)

    def test_drhw_names_excludes_isp(self, mixed_graph, platform8):
        placed = build_initial_schedule(mixed_graph, platform8)
        assert set(placed.drhw_names) == {"hw_a", "hw_c"}

    def test_resource_order_sorted_by_start(self, chain4, platform3):
        placed = build_initial_schedule(chain4, platform3)
        for resource in placed.resources:
            order = placed.resource_order(resource)
            starts = [placed.ideal_start(name) for name in order]
            assert starts == sorted(starts)
