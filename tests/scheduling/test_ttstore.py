"""Persistent transposition store: bit-identity, healing, concurrency.

The store's contract mirrors the sweep caches' (and is tested in the
same spirit as ``tests/runner/test_cache_poisoning.py``): no on-disk
state may ever change a schedule — warm-from-disk searches are
bit-identical to cold ones and merely visit fewer nodes — and no on-disk
damage may ever crash a search: truncated files, version skew, tampered
payloads and concurrent writers all degrade to (partial) misses that the
next flush heals in place.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.platform.description import Platform
from repro.scheduling import (
    BranchAndBoundScheduler,
    PrefetchProblem,
    SchedulerPool,
    TranspositionStore,
    build_initial_schedule,
)
from repro.scheduling.ttstore import (
    LOADED_GENERATION,
    TTSTORE_FORMAT_VERSION,
)
from repro.workloads.multimedia import (
    jpeg_decoder_graph,
    pattern_recognition_graph,
)

LATENCY = 4.0


def make_problem(factory=pattern_recognition_graph, tiles=2,
                 latency=LATENCY) -> PrefetchProblem:
    placed = build_initial_schedule(
        factory(), Platform(tile_count=tiles,
                            reconfiguration_latency=latency)
    )
    return PrefetchProblem(placed, latency)


def seed_store(store: TranspositionStore,
               problem: PrefetchProblem) -> BranchAndBoundScheduler:
    """First run: populate the store with one problem's certificates."""
    engine = BranchAndBoundScheduler(persistent_table=True, tt_store=store)
    engine.schedule(problem)
    assert engine.flush_table() is not None
    return engine


def table_path(store: TranspositionStore, problem: PrefetchProblem):
    context = store.context_for(problem.placed,
                                problem.reconfiguration_latency,
                                problem.release_time,
                                None, BranchAndBoundScheduler().table_limit)
    return store.path_for(context)


class TestWarmFromDisk:
    def test_restored_search_is_bit_identical_and_cheaper(self, tmp_path):
        problem = make_problem()
        cold = BranchAndBoundScheduler().schedule(problem)
        store = TranspositionStore(tmp_path)
        seed_store(store, problem)
        restored = BranchAndBoundScheduler(
            persistent_table=True, tt_store=store
        ).schedule(problem)
        assert restored.load_order == cold.load_order
        assert restored.timed.executions == cold.timed.executions
        assert abs(restored.makespan - cold.makespan) < 1e-9
        assert restored.stats.operations < cold.stats.operations
        assert restored.stats.tt_warm_hits > 0

    def test_content_addressing_survives_object_identity(self, tmp_path):
        """A rebuilt (content-identical) schedule hits the same table."""
        store = TranspositionStore(tmp_path)
        seed_store(store, make_problem())
        # New graph/schedule objects, same content, fresh process modeled
        # by a fresh engine: the digest must match and serve certificates.
        rebuilt = make_problem()
        restored = BranchAndBoundScheduler(
            persistent_table=True, tt_store=store
        ).schedule(rebuilt)
        assert restored.stats.tt_warm_hits > 0

    def test_different_context_misses(self, tmp_path):
        """Latency is part of the key: no cross-context certificate leaks."""
        store = TranspositionStore(tmp_path)
        seed_store(store, make_problem())
        other_latency = make_problem(latency=2.0)
        restored = BranchAndBoundScheduler(
            persistent_table=True, tt_store=store
        ).schedule(other_latency)
        assert restored.stats.tt_warm_hits == 0

    def test_with_reused_variants_share_one_persisted_table(self, tmp_path):
        """The critical-selection ladder reruns warm from one file."""
        problem = make_problem(jpeg_decoder_graph, tiles=1)
        ladder = [problem] + [
            problem.with_reused(problem.loads[:k]) for k in (1, 2)
        ]
        cold = [BranchAndBoundScheduler().schedule(p) for p in ladder]
        store = TranspositionStore(tmp_path)
        first = BranchAndBoundScheduler(persistent_table=True,
                                        tt_store=store)
        for p in ladder:
            first.schedule(p)
        first.flush_table()
        assert len(store) == 1
        restored_engine = BranchAndBoundScheduler(persistent_table=True,
                                                  tt_store=store)
        restored = [restored_engine.schedule(p) for p in ladder]
        assert [r.load_order for r in restored] == \
            [c.load_order for c in cold]
        assert sum(r.stats.tt_warm_hits for r in restored) > 0

    def test_invalidate_flushes_before_dropping(self, tmp_path):
        store = TranspositionStore(tmp_path)
        engine = BranchAndBoundScheduler(persistent_table=True,
                                         tt_store=store)
        engine.schedule(make_problem())
        assert len(store) == 0  # nothing flushed yet
        engine.invalidate()
        assert len(store) == 1  # invalidation persisted the certificates

    def test_loaded_entries_carry_loaded_generation(self, tmp_path):
        store = TranspositionStore(tmp_path)
        problem = make_problem()
        seed_store(store, problem)
        context = store.context_for(problem.placed, LATENCY, 0.0, None,
                                    BranchAndBoundScheduler().table_limit)
        table = store.load(context)
        assert table
        for entry in table.values():
            ref, barrier, future, generation = entry
            assert generation == LOADED_GENERATION
            assert ref < barrier  # only certificates are persisted


class TestPoisonedStore:
    def _seeded(self, tmp_path):
        problem = make_problem()
        store = TranspositionStore(tmp_path)
        seed_store(store, problem)
        path = table_path(store, problem)
        assert path.exists()
        return problem, store, path

    def run_restored(self, store, problem):
        return BranchAndBoundScheduler(
            persistent_table=True, tt_store=store
        ).schedule(problem)

    def test_truncated_file_is_a_miss_and_heals_in_place(self, tmp_path):
        problem, store, path = self._seeded(tmp_path)
        content = path.read_text(encoding="utf-8")
        path.write_text(content[: len(content) // 2], encoding="utf-8")
        cold = BranchAndBoundScheduler().schedule(problem)
        engine = BranchAndBoundScheduler(persistent_table=True,
                                         tt_store=store)
        damaged = engine.schedule(problem)
        assert damaged.load_order == cold.load_order
        assert damaged.stats.tt_warm_hits == 0  # nothing was trusted
        # The engine's own flush overwrites the damaged file in place...
        assert engine.flush_table() == path
        json.loads(path.read_text(encoding="utf-8"))  # ...validly
        healed = self.run_restored(store, problem)
        assert healed.stats.tt_warm_hits > 0

    def test_version_skew_is_a_miss_both_directions(self, tmp_path):
        problem, store, path = self._seeded(tmp_path)
        cold = BranchAndBoundScheduler().schedule(problem)
        for skew in (TTSTORE_FORMAT_VERSION + 1,
                     TTSTORE_FORMAT_VERSION - 1):
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["format"] = skew
            path.write_text(json.dumps(entry), encoding="utf-8")
            skewed = self.run_restored(store, problem)
            assert skewed.load_order == cold.load_order
            assert skewed.stats.tt_warm_hits == 0

    def test_tampered_request_payload_is_a_miss(self, tmp_path):
        """A digest collision / copied file must fail payload verification."""
        problem, store, path = self._seeded(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["request"]["reconfiguration_latency"] = 123.0
        path.write_text(json.dumps(entry), encoding="utf-8")
        tampered = self.run_restored(store, problem)
        assert tampered.stats.tt_warm_hits == 0

    def test_single_bad_entry_is_skipped_not_fatal(self, tmp_path):
        problem, store, path = self._seeded(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert len(entry["entries"]) >= 2
        entry["entries"][0] = ["garbage"]        # malformed shape
        entry["entries"][1][1] = "not-a-number"  # malformed ref
        path.write_text(json.dumps(entry), encoding="utf-8")
        context = store.context_for(problem.placed, LATENCY, 0.0, None,
                                    BranchAndBoundScheduler().table_limit)
        table = store.load(context)
        assert table is not None  # the healthy tail still loads
        assert store.entries_rejected == 2
        cold = BranchAndBoundScheduler().schedule(problem)
        partial = self.run_restored(store, problem)
        assert partial.load_order == cold.load_order

    def test_violated_certificate_premise_is_rejected(self, tmp_path):
        """ref >= barrier entries (hand-edited) must never load."""
        problem, store, path = self._seeded(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        for item in entry["entries"]:
            item[1] = item[2] + 1.0  # ref above barrier: premise void
        path.write_text(json.dumps(entry), encoding="utf-8")
        context = store.context_for(problem.placed, LATENCY, 0.0, None,
                                    BranchAndBoundScheduler().table_limit)
        assert store.load(context) is None


class TestConcurrentWriters:
    def test_two_writers_same_key_last_wins_and_loads(self, tmp_path):
        """Two processes flushing the same key leave one valid file.

        Atomic temp-file + rename writes mean interleaved flushes can
        only ever be observed as one whole table or the other — never a
        torn mix — and both writers' tables hold true certificates, so
        either outcome warm-starts correctly.
        """
        problem = make_problem()
        cold = BranchAndBoundScheduler().schedule(problem)
        store_a = TranspositionStore(tmp_path)
        store_b = TranspositionStore(tmp_path)
        barrier = threading.Barrier(2)
        errors = []

        def writer(store):
            try:
                engine = BranchAndBoundScheduler(persistent_table=True,
                                                 tt_store=store)
                engine.schedule(problem)
                barrier.wait(timeout=30)
                for _ in range(20):
                    engine.flush_table()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(store,))
                   for store in (store_a, store_b)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(store_a) == 1  # one key, one file, no .tmp debris left
        restored = BranchAndBoundScheduler(
            persistent_table=True, tt_store=TranspositionStore(tmp_path)
        ).schedule(problem)
        assert restored.load_order == cold.load_order
        assert restored.stats.tt_warm_hits > 0

    def test_tmp_debris_from_crashed_writer_is_harmless(self, tmp_path):
        problem = make_problem()
        store = TranspositionStore(tmp_path)
        seed_store(store, problem)
        (tmp_path / ".tmp-crashed.json").write_text('{"format": 1,',
                                                    encoding="utf-8")
        restored = BranchAndBoundScheduler(
            persistent_table=True, tt_store=store
        ).schedule(problem)
        assert restored.stats.tt_warm_hits > 0
        assert len(store) == 1  # debris is not counted as a table


class TestBounds:
    def test_max_entries_keeps_most_recent_tail(self, tmp_path):
        problem = make_problem(pattern_recognition_graph, tiles=2)
        big = TranspositionStore(tmp_path / "big")
        engine = seed_store(big, problem)
        full = big.load(engine._table_context)
        assert full is not None and len(full) > 4
        small = TranspositionStore(tmp_path / "small", max_entries=4)
        context = small.context_for(problem.placed, LATENCY, 0.0, None,
                                    engine.table_limit)
        assert small.save(context, engine._table) is not None
        capped = small.load(context)
        assert len(capped) == 4
        # The persisted tail is the most-recently-used end of the table.
        assert list(capped)[-1] == list(full)[-1]

    def test_max_tables_prunes_oldest_files(self, tmp_path):
        import os

        store = TranspositionStore(tmp_path, max_tables=3)
        problems = [make_problem(latency=float(latency))
                    for latency in (1, 2, 3, 5, 6)]
        for index, problem in enumerate(problems):
            engine = BranchAndBoundScheduler(persistent_table=True,
                                             tt_store=store)
            engine.schedule(problem)
            path = engine.flush_table()
            assert path is not None
            # Distinct, strictly increasing mtimes (rename preserves the
            # temp file's timestamp, which a fast test makes collide).
            stamp = 1_000_000 + index
            os.utime(path, (stamp, stamp))
        store.prune()
        assert len(store) == 3
        # The survivors are the three most recently written contexts.
        survivors = {p.name for p in store.directory.glob("tt-*.json")}
        expected = set()
        for problem in problems[-3:]:
            context = store.context_for(
                problem.placed, problem.reconfiguration_latency, 0.0,
                None, BranchAndBoundScheduler().table_limit)
            expected.add(context.filename)
        assert survivors == expected

    def test_clear_removes_every_table(self, tmp_path):
        store = TranspositionStore(tmp_path)
        seed_store(store, make_problem())
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0


class TestPoolIntegration:
    def test_pool_flush_and_reload_round_trip(self, tmp_path):
        problem = make_problem()
        cold = BranchAndBoundScheduler().schedule(problem)
        store = TranspositionStore(tmp_path)
        pool = SchedulerPool(tt_store=store)
        pool.schedule(problem)
        assert pool.flush() == 1
        fresh_pool = SchedulerPool(tt_store=TranspositionStore(tmp_path))
        restored = fresh_pool.schedule(problem)
        assert restored.load_order == cold.load_order
        assert fresh_pool.tt_warm_hits > 0

    def test_eviction_persists_the_evicted_table(self, tmp_path):
        store = TranspositionStore(tmp_path)
        pool = SchedulerPool(max_engines=1, tt_store=store)
        first = make_problem()
        pool.schedule(first)
        pool.schedule(make_problem(jpeg_decoder_graph, tiles=1))  # evicts
        assert pool.engines_evicted == 1
        assert len(store) >= 1  # the evicted engine flushed on the way out
        fresh = SchedulerPool(tt_store=TranspositionStore(tmp_path))
        assert fresh.schedule(first).stats.tt_warm_hits > 0

    def test_schedule_death_persists_via_weakref(self, tmp_path):
        import gc

        store = TranspositionStore(tmp_path)
        pool = SchedulerPool(tt_store=store)
        problem = make_problem()
        pool.schedule(problem)
        assert len(store) == 0
        del problem
        gc.collect()
        assert pool.engine_count == 0  # weakref dropped the engine
        assert len(store) == 1         # ...but its certificates survived

    def test_attach_tt_store_rebinds_live_engines(self, tmp_path):
        pool = SchedulerPool()
        problem = make_problem()
        pool.schedule(problem)
        assert pool.flush() == 0  # no store: nothing persisted
        store = TranspositionStore(tmp_path)
        pool.attach_tt_store(store)
        engine = next(iter(pool._engines.values()))[1]
        assert engine.tt_store is store
        # A release change invalidates the engine's context: the table it
        # earned *before* the store was attached flushes on the way out.
        pool.schedule(problem.with_release(5.0))
        assert len(store) >= 1

    def test_detaching_stops_persistence(self, tmp_path):
        store = TranspositionStore(tmp_path)
        pool = SchedulerPool(tt_store=store)
        pool.schedule(make_problem())
        pool.attach_tt_store(None)
        assert pool.flush() == 0
        assert len(store) == 0
