"""Unit tests for the prefetch schedulers (baseline, list, branch & bound)."""

from itertools import permutations

import pytest

from repro.errors import SchedulingError
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.graphs.taskgraph import chain_graph
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem, SchedulerStats
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.noprefetch import OnDemandScheduler
from repro.scheduling.prefetch_bb import (
    DEFAULT_EXACT_LIMIT,
    BranchAndBoundScheduler,
    OptimalPrefetchScheduler,
)
from repro.scheduling.prefetch_list import ListPrefetchScheduler

LATENCY = 4.0


def _problem(graph, tiles=8, reused=()):
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return PrefetchProblem(placed, LATENCY, reused=frozenset(reused))


class TestPrefetchProblem:
    def test_loads_exclude_reused(self, chain4):
        problem = _problem(chain4, reused=["s0", "s2"])
        assert set(problem.loads) == {"s1", "s3"}
        assert problem.load_count == 2

    def test_unknown_reused_rejected(self, chain4):
        with pytest.raises(SchedulingError):
            _problem(chain4, reused=["ghost"])

    def test_negative_latency_rejected(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        with pytest.raises(SchedulingError):
            PrefetchProblem(placed, -1.0)

    def test_with_reused_and_release(self, chain4):
        problem = _problem(chain4)
        updated = problem.with_reused(["s0"]).with_release(10.0, 12.0)
        assert updated.reused == frozenset(["s0"])
        assert updated.release_time == 10.0
        assert updated.controller_available == 12.0


class TestOnDemandScheduler:
    def test_chain_overhead_is_full(self, chain4_problem):
        result = OnDemandScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(16.0)
        assert result.overhead_percent == pytest.approx(19.75, abs=0.1)
        assert result.scheduler_name == "no-prefetch"

    def test_stats_linear(self, chain4_problem):
        result = OnDemandScheduler().schedule(chain4_problem)
        assert result.stats.operations == chain4_problem.load_count


class TestListPrefetchScheduler:
    def test_chain_hides_all_but_first(self, chain4_problem):
        result = ListPrefetchScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)
        assert result.hidden_load_fraction == pytest.approx(0.75)

    def test_weight_priority_variant(self, chain4_problem):
        result = ListPrefetchScheduler("weight").schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)

    def test_unknown_priority_rejected(self):
        with pytest.raises(SchedulingError):
            ListPrefetchScheduler("bogus")

    def test_never_worse_than_on_demand_on_benchmarks(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            heuristic = ListPrefetchScheduler().schedule(problem)
            baseline = OnDemandScheduler().schedule(problem)
            assert heuristic.makespan <= baseline.makespan + 1e-9

    def test_nlogn_operation_count(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            result = ListPrefetchScheduler().schedule(problem)
            count = problem.load_count
            assert result.stats.operations >= count
            assert result.stats.operations <= 4 * count * max(1, count)

    def test_empty_load_set(self, chain4):
        problem = _problem(chain4, reused=chain4.subtask_names)
        result = ListPrefetchScheduler().schedule(problem)
        assert result.overhead == pytest.approx(0.0)
        assert result.load_count == 0


class TestBranchAndBound:
    def test_matches_or_beats_heuristic(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            optimal = BranchAndBoundScheduler().schedule(problem)
            heuristic = ListPrefetchScheduler().schedule(problem)
            assert optimal.makespan <= heuristic.makespan + 1e-9

    def test_optimal_on_chain(self, chain4_problem):
        result = BranchAndBoundScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)

    def test_exact_limit_enforced(self, chain4_problem):
        scheduler = BranchAndBoundScheduler(exact_limit=2)
        with pytest.raises(SchedulingError):
            scheduler.schedule(chain4_problem)

    def test_reports_evaluations(self, chain4_problem):
        result = BranchAndBoundScheduler().schedule(chain4_problem)
        assert result.stats.evaluations >= 1

    def test_empty_problem(self, chain4):
        problem = _problem(chain4, reused=chain4.subtask_names)
        result = BranchAndBoundScheduler().schedule(problem)
        assert result.overhead == pytest.approx(0.0)

    def test_reports_pruning_stats(self, benchmark_graphs):
        """The incremental search surfaces its pruning counters."""
        saw_extension = False
        for graph in benchmark_graphs:
            placed = build_initial_schedule(graph, Platform(tile_count=2))
            result = BranchAndBoundScheduler().schedule(
                PrefetchProblem(placed, LATENCY)
            )
            stats = result.stats
            assert stats.states_extended >= 0
            assert stats.nodes_pruned_bound >= 0
            assert stats.nodes_pruned_dominance >= 0
            saw_extension = saw_extension or stats.states_extended > 0
        assert saw_extension

    def test_best_order_replays_to_same_makespan(self, benchmark_graphs):
        """The returned dispatch order is a valid priority order.

        Replaying the branch-and-bound winner through the greedy
        dispatcher must reproduce exactly the makespan the search claims
        (the dispatch-space/priority-space equivalence invariant).
        """
        for tiles in (1, 2, 3):
            for graph in benchmark_graphs:
                placed = build_initial_schedule(graph,
                                                Platform(tile_count=tiles))
                problem = PrefetchProblem(placed, LATENCY)
                result = BranchAndBoundScheduler().schedule(problem)
                replayed = replay_schedule(
                    placed, LATENCY, result.load_order,
                    priority_order=result.load_order,
                )
                assert replayed.makespan == pytest.approx(result.makespan)

    def test_transposition_table_is_exercised(self):
        """Wide transposition-heavy problems actually reuse subtrees.

        A sparse random DAG over many tiles maximizes interchangeable
        prefixes (permutations of already-consumed loads converge to one
        dispatcher signature), which is exactly the workload shape the
        memoized table is for.
        """
        totals = SchedulerStats()
        for seed in range(4):
            graph = random_dag(
                "tt_corpus", count=10, edge_probability=0.1,
                time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                seed=seed,
            )
            placed = build_initial_schedule(graph, Platform(tile_count=5))
            result = BranchAndBoundScheduler().schedule(
                PrefetchProblem(placed, LATENCY)
            )
            stats = result.stats
            assert stats.tt_evictions == 0  # default cap is never reached
            assert stats.undo_depth <= result.load_count
            totals = totals.merged(stats)
        assert totals.tt_peak_size > 0
        assert totals.tt_hits + totals.nodes_pruned_dominance > 0

    def test_table_limit_zero_degrades_to_pruning_only(self):
        """A zero-capacity table still finds the optimum, memo-free."""
        graph = random_dag(
            "lru_corpus", count=7, edge_probability=0.2,
            time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
            seed=3,
        )
        placed = build_initial_schedule(graph, Platform(tile_count=3))
        problem = PrefetchProblem(placed, LATENCY)
        unbounded = BranchAndBoundScheduler().schedule(problem)
        bounded = BranchAndBoundScheduler(table_limit=0).schedule(problem)
        assert bounded.makespan == pytest.approx(unbounded.makespan)
        # Nothing survives in a zero-capacity table: no hit or dominance
        # prune can ever fire, and every stored entry is evicted at once.
        assert bounded.stats.tt_hits == 0
        assert bounded.stats.nodes_pruned_dominance == 0
        assert bounded.stats.tt_peak_size <= 1
        assert bounded.stats.tt_evictions > 0

    def test_small_table_limit_evicts_but_stays_optimal(self):
        """LRU eviction degrades speed, never the result."""
        for seed in range(4):
            graph = random_dag(
                "lru_corpus", count=8, edge_probability=0.15,
                time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                seed=seed,
            )
            placed = build_initial_schedule(graph, Platform(tile_count=4))
            problem = PrefetchProblem(placed, LATENCY)
            unbounded = BranchAndBoundScheduler().schedule(problem)
            bounded = BranchAndBoundScheduler(table_limit=8).schedule(problem)
            assert bounded.makespan == pytest.approx(unbounded.makespan)
            assert bounded.stats.tt_peak_size <= 9
            if unbounded.stats.tt_peak_size > 8:
                assert bounded.stats.tt_evictions > 0

    def test_negative_table_limit_rejected(self):
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(table_limit=-1)

    def test_optimal_versus_brute_force(self):
        """B&B equals the minimum over *all* load priority permutations.

        This pins the incremental stateful search (with its realized-state
        bounds and prefix-dominance table) to the seed engine's exhaustive
        semantics on a corpus of random problems small enough to enumerate.
        """
        for seed in range(8):
            for tiles in (1, 2, 3):
                graph = random_dag(
                    "bb_corpus", count=6, edge_probability=0.35,
                    time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                    seed=seed,
                )
                placed = build_initial_schedule(graph,
                                                Platform(tile_count=tiles))
                problem = PrefetchProblem(placed, LATENCY)
                loads = list(problem.loads)
                brute = min(
                    replay_schedule(placed, LATENCY, order,
                                    priority_order=order).makespan
                    for order in permutations(loads)
                )
                result = BranchAndBoundScheduler().schedule(problem)
                assert result.makespan == pytest.approx(brute)


class TestOptimalPrefetchScheduler:
    def test_small_problems_use_exact_search(self, chain4_problem):
        result = OptimalPrefetchScheduler(exact_limit=9).schedule(chain4_problem)
        assert result.scheduler_name == "optimal-prefetch"
        assert result.overhead == pytest.approx(4.0)

    def test_default_exact_limit_covers_seventeen_loads(self):
        """The flattened kernel affords exact search to 17 loads."""
        assert DEFAULT_EXACT_LIMIT >= 17
        graph = chain_graph("seventeen", [6.0] * 17)
        placed = build_initial_schedule(graph, Platform(tile_count=17))
        result = OptimalPrefetchScheduler().schedule(
            PrefetchProblem(placed, LATENCY)
        )
        # Exact search ran (not the heuristic fallback): only the
        # branch-and-bound engine extends replay states or prunes nodes —
        # at the very least its root node does one of the two.  The list
        # fallback keeps every search counter at zero.
        stats = result.stats
        assert stats.states_extended + stats.nodes_pruned_bound > 0
        assert result.load_count == 17

    def test_large_problems_fall_back_to_heuristic(self):
        graph = chain_graph("long", [6.0] * 15)
        problem = _problem(graph)
        scheduler = OptimalPrefetchScheduler(exact_limit=5)
        result = scheduler.schedule(problem)
        heuristic = ListPrefetchScheduler().schedule(problem)
        assert result.makespan == pytest.approx(heuristic.makespan)

    def test_negative_exact_limit_rejected(self):
        with pytest.raises(SchedulingError):
            OptimalPrefetchScheduler(exact_limit=-1)


class TestSchedulerStats:
    def test_merge(self):
        merged = SchedulerStats(operations=3, evaluations=1).merged(
            SchedulerStats(operations=4, evaluations=2)
        )
        assert merged.operations == 7
        assert merged.evaluations == 3

    def test_merge_includes_pruning_counters(self):
        merged = SchedulerStats(states_extended=5, nodes_pruned_bound=2,
                                nodes_pruned_dominance=1).merged(
            SchedulerStats(states_extended=7, nodes_pruned_bound=3,
                           nodes_pruned_dominance=4)
        )
        assert merged.states_extended == 12
        assert merged.nodes_pruned_bound == 5
        assert merged.nodes_pruned_dominance == 5

    def test_merge_transposition_counters(self):
        """Hits and evictions add up; peaks are high-water marks."""
        merged = SchedulerStats(tt_hits=3, tt_evictions=1, tt_peak_size=40,
                                undo_depth=7).merged(
            SchedulerStats(tt_hits=2, tt_evictions=5, tt_peak_size=25,
                           undo_depth=9)
        )
        assert merged.tt_hits == 5
        assert merged.tt_evictions == 6
        assert merged.tt_peak_size == 40
        assert merged.undo_depth == 9
