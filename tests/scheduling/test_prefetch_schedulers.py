"""Unit tests for the prefetch schedulers (baseline, list, branch & bound)."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.taskgraph import chain_graph
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem, SchedulerStats
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.noprefetch import OnDemandScheduler
from repro.scheduling.prefetch_bb import (
    BranchAndBoundScheduler,
    OptimalPrefetchScheduler,
)
from repro.scheduling.prefetch_list import ListPrefetchScheduler

LATENCY = 4.0


def _problem(graph, tiles=8, reused=()):
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return PrefetchProblem(placed, LATENCY, reused=frozenset(reused))


class TestPrefetchProblem:
    def test_loads_exclude_reused(self, chain4):
        problem = _problem(chain4, reused=["s0", "s2"])
        assert set(problem.loads) == {"s1", "s3"}
        assert problem.load_count == 2

    def test_unknown_reused_rejected(self, chain4):
        with pytest.raises(SchedulingError):
            _problem(chain4, reused=["ghost"])

    def test_negative_latency_rejected(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        with pytest.raises(SchedulingError):
            PrefetchProblem(placed, -1.0)

    def test_with_reused_and_release(self, chain4):
        problem = _problem(chain4)
        updated = problem.with_reused(["s0"]).with_release(10.0, 12.0)
        assert updated.reused == frozenset(["s0"])
        assert updated.release_time == 10.0
        assert updated.controller_available == 12.0


class TestOnDemandScheduler:
    def test_chain_overhead_is_full(self, chain4_problem):
        result = OnDemandScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(16.0)
        assert result.overhead_percent == pytest.approx(19.75, abs=0.1)
        assert result.scheduler_name == "no-prefetch"

    def test_stats_linear(self, chain4_problem):
        result = OnDemandScheduler().schedule(chain4_problem)
        assert result.stats.operations == chain4_problem.load_count


class TestListPrefetchScheduler:
    def test_chain_hides_all_but_first(self, chain4_problem):
        result = ListPrefetchScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)
        assert result.hidden_load_fraction == pytest.approx(0.75)

    def test_weight_priority_variant(self, chain4_problem):
        result = ListPrefetchScheduler("weight").schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)

    def test_unknown_priority_rejected(self):
        with pytest.raises(SchedulingError):
            ListPrefetchScheduler("bogus")

    def test_never_worse_than_on_demand_on_benchmarks(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            heuristic = ListPrefetchScheduler().schedule(problem)
            baseline = OnDemandScheduler().schedule(problem)
            assert heuristic.makespan <= baseline.makespan + 1e-9

    def test_nlogn_operation_count(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            result = ListPrefetchScheduler().schedule(problem)
            count = problem.load_count
            assert result.stats.operations >= count
            assert result.stats.operations <= 4 * count * max(1, count)

    def test_empty_load_set(self, chain4):
        problem = _problem(chain4, reused=chain4.subtask_names)
        result = ListPrefetchScheduler().schedule(problem)
        assert result.overhead == pytest.approx(0.0)
        assert result.load_count == 0


class TestBranchAndBound:
    def test_matches_or_beats_heuristic(self, benchmark_graphs):
        for graph in benchmark_graphs:
            problem = _problem(graph)
            optimal = BranchAndBoundScheduler().schedule(problem)
            heuristic = ListPrefetchScheduler().schedule(problem)
            assert optimal.makespan <= heuristic.makespan + 1e-9

    def test_optimal_on_chain(self, chain4_problem):
        result = BranchAndBoundScheduler().schedule(chain4_problem)
        assert result.overhead == pytest.approx(4.0)

    def test_exact_limit_enforced(self, chain4_problem):
        scheduler = BranchAndBoundScheduler(exact_limit=2)
        with pytest.raises(SchedulingError):
            scheduler.schedule(chain4_problem)

    def test_reports_evaluations(self, chain4_problem):
        result = BranchAndBoundScheduler().schedule(chain4_problem)
        assert result.stats.evaluations >= 1

    def test_empty_problem(self, chain4):
        problem = _problem(chain4, reused=chain4.subtask_names)
        result = BranchAndBoundScheduler().schedule(problem)
        assert result.overhead == pytest.approx(0.0)


class TestOptimalPrefetchScheduler:
    def test_small_problems_use_exact_search(self, chain4_problem):
        result = OptimalPrefetchScheduler(exact_limit=9).schedule(chain4_problem)
        assert result.scheduler_name == "optimal-prefetch"
        assert result.overhead == pytest.approx(4.0)

    def test_large_problems_fall_back_to_heuristic(self):
        graph = chain_graph("long", [6.0] * 15)
        problem = _problem(graph)
        scheduler = OptimalPrefetchScheduler(exact_limit=5)
        result = scheduler.schedule(problem)
        heuristic = ListPrefetchScheduler().schedule(problem)
        assert result.makespan == pytest.approx(heuristic.makespan)

    def test_negative_exact_limit_rejected(self):
        with pytest.raises(SchedulingError):
            OptimalPrefetchScheduler(exact_limit=-1)


class TestSchedulerStats:
    def test_merge(self):
        merged = SchedulerStats(operations=3, evaluations=1).merged(
            SchedulerStats(operations=4, evaluations=2)
        )
        assert merged.operations == 7
        assert merged.evaluations == 3
