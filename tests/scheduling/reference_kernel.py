"""Frozen tuple-based replay kernel (pre-flattening reference copy).

This is the PR-8 ``repro.scheduling.replay`` kernel, verbatim except for
this preamble and absolute imports: dict-of-name state columns, nested
name-tuple signatures, per-frame undo records.  It is retained purely as
a *differential oracle* for the flattened integer kernel — the property
tests in ``test_replay_flat_reference.py`` drive both kernels through
identical push/pop interleavings and assert bit-identical observable
behavior and signature-equality classes.  Never import it from product
code; it shares nothing (caches included) with the live kernel.
"""


from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.scheduling.schedule import (
    ExecutionEntry,
    LoadEntry,
    PlacedSchedule,
    ResourceId,
    StartConstraint,
    TIME_EPSILON,
    TimedSchedule,
)

#: Signature of an optional communication-latency callback:
#: ``(producer, consumer, producer_resource, consumer_resource) -> latency``.
CommunicationFn = Callable[[str, str, ResourceId, ResourceId], float]


class _ReplayCore:
    """Static, per-placed-schedule context shared by every replay state.

    Everything here is immutable once built; replay states only reference
    it.  Building it hoists the repeated graph/placement lookups (networkx
    predecessor queries, position scans) out of the hot dispatch loop.

    The core deliberately does **not** reference the placed schedule it was
    derived from: it is the value of a weak-keyed cache entry whose key is
    that schedule, and a strong back-reference would pin the entry (and the
    schedule) for the process lifetime.  States carry their own strong
    reference to the schedule instead.
    """

    __slots__ = (
        "graph", "resources", "sequences", "predecessors",
        "successors", "exec_time", "ideal_start", "position", "resource_of",
        "configuration", "drhw_names", "total", "__weakref__",
    )

    def __init__(self, placed: PlacedSchedule) -> None:
        graph = placed.graph
        self.graph = graph
        self.resources: Tuple[ResourceId, ...] = tuple(placed.resources)
        self.sequences: Dict[ResourceId, Tuple[str, ...]] = {
            resource: tuple(placed.resource_order(resource))
            for resource in self.resources
        }
        self.predecessors: Dict[str, Tuple[str, ...]] = {
            name: tuple(graph.predecessors(name))
            for name in graph.subtask_names
        }
        self.successors: Dict[str, Tuple[str, ...]] = {
            name: tuple(graph.successors(name))
            for name in graph.subtask_names
        }
        self.exec_time: Dict[str, float] = {
            name: graph.execution_time(name) for name in graph.subtask_names
        }
        self.ideal_start: Dict[str, float] = {
            name: placed.ideal_start(name) for name in graph.subtask_names
        }
        self.position: Dict[str, int] = {}
        self.resource_of: Dict[str, ResourceId] = {}
        for resource, sequence in self.sequences.items():
            for index, name in enumerate(sequence):
                self.position[name] = index
                self.resource_of[name] = resource
        self.configuration: Dict[str, str] = {
            subtask.name: subtask.configuration for subtask in graph
        }
        self.drhw_names = frozenset(placed.drhw_names)
        self.total = len(graph)


#: Weak per-schedule cache of the static replay context.
_CORE_CACHE: "weakref.WeakKeyDictionary[PlacedSchedule, _ReplayCore]" = (
    weakref.WeakKeyDictionary()
)


def _core_for(placed: PlacedSchedule) -> _ReplayCore:
    core = _CORE_CACHE.get(placed)
    if core is None:
        core = _ReplayCore(placed)
        _CORE_CACHE[placed] = core
    return core


def priority_rank(placed: PlacedSchedule, pending: Iterable[str],
                  priority_order: Optional[Sequence[str]]) -> Dict[str, int]:
    """Rank map of the greedy dispatcher for a given priority order.

    Loads named by ``priority_order`` keep their position; pending loads
    missing from it are ordered after it by ideal start time.  This is the
    exact tie-breaking contract of the monolithic replay.
    """
    explicit_rank: Dict[str, int] = {}
    if priority_order is not None:
        for index, name in enumerate(priority_order):
            explicit_rank.setdefault(name, index)
    fallback_base = len(explicit_rank)
    fallback_order = sorted(
        (name for name in pending if name not in explicit_rank),
        key=lambda n: (placed.ideal_start(n), n),
    )
    rank = dict(explicit_rank)
    for offset, name in enumerate(fallback_order):
        rank[name] = fallback_base + offset
    return rank


class ReplayState:
    """One snapshot of the greedy dispatcher replaying a placed schedule.

    States are created with :meth:`start`, grown with :meth:`extend` (or
    driven to completion with :meth:`run`) and materialized with
    :meth:`finish`.  ``extend`` never mutates its receiver: the parent
    state stays usable, which is what lets a depth-first search carry one
    state per tree node instead of replaying full orders at the leaves.
    """

    __slots__ = (
        "_core", "_placed", "latency", "on_demand", "release",
        "communication", "_weights", "_tails", "controller_time", "_pending",
        "_executions", "_loads", "_load_finish", "_next_index",
        "_resource_free", "_floor", "_realized", "_undo", "_frame",
    )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def start(cls, placed: PlacedSchedule,
              reconfiguration_latency: float,
              loads_needed: Iterable[str],
              *,
              on_demand: bool = False,
              release_time: float = 0.0,
              controller_available: Optional[float] = None,
              communication: Optional[CommunicationFn] = None,
              weights: Optional[Mapping[str, float]] = None
              ) -> "ReplayState":
        """Initial state: no load issued, executions advanced to quiescence.

        Parameters mirror :func:`repro.scheduling.evaluator.replay_schedule`;
        ``weights`` optionally enables the realized makespan floor used by
        branch-and-bound bounds (see the module docstring).
        """
        if reconfiguration_latency < 0:
            raise SchedulingError("reconfiguration latency must be non-negative")
        core = _core_for(placed)
        pending = set()
        for name in loads_needed:
            placed.placement(name)  # validates membership
            if name in core.drhw_names:
                pending.add(name)

        state = object.__new__(cls)
        state._core = core
        state._placed = placed
        state.latency = reconfiguration_latency
        state.on_demand = on_demand
        state.release = release_time
        state.communication = communication
        state._weights = dict(weights) if weights is not None else None
        if state._weights is not None:
            state._tails = {
                name: max((state._weights[succ]
                           for succ in core.successors[name]), default=0.0)
                for name in core.exec_time
            }
        else:
            state._tails = None
        state.controller_time = max(
            release_time,
            controller_available if controller_available is not None
            else release_time,
        )
        state._pending = pending
        state._executions = {}
        state._loads = []
        state._load_finish = {}
        state._next_index = {r: 0 for r in core.resources}
        state._resource_free = {r: release_time for r in core.resources}
        state._floor = release_time
        state._realized = release_time
        state._undo = []
        state._frame = None
        state._advance()
        return state

    def _clone(self) -> "ReplayState":
        child = object.__new__(ReplayState)
        child._core = self._core
        child._placed = self._placed
        child.latency = self.latency
        child.on_demand = self.on_demand
        child.release = self.release
        child.communication = self.communication
        child._weights = self._weights
        child._tails = self._tails
        child.controller_time = self.controller_time
        child._pending = set(self._pending)
        child._executions = dict(self._executions)
        child._loads = list(self._loads)
        child._load_finish = dict(self._load_finish)
        child._next_index = dict(self._next_index)
        child._resource_free = dict(self._resource_free)
        child._floor = self._floor
        child._realized = self._realized
        child._undo = []  # undo frames are not inherited: pops stay local
        child._frame = None
        return child

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def placed(self) -> PlacedSchedule:
        """The placed schedule this state replays."""
        return self._placed

    @property
    def pending_loads(self) -> frozenset:
        """Loads not yet issued."""
        return frozenset(self._pending)

    @property
    def is_complete(self) -> bool:
        """``True`` once every subtask has executed."""
        return len(self._executions) >= self._core.total

    @property
    def makespan(self) -> float:
        """Finish time of the latest execution so far (absolute time).

        Tracked incrementally (and restored by :meth:`pop`), so reading it
        per search node costs O(1) instead of a scan over the executions.
        """
        return self._realized

    @property
    def undo_depth(self) -> int:
        """Number of pushed loads that :meth:`pop` could currently undo."""
        return len(self._undo)

    @property
    def critical_floor(self) -> float:
        """Realized lower bound on any completion's makespan.

        Only meaningful when the state was started with ``weights``: every
        executed entry contributes ``finish + longest successor chain`` and
        every issued load ``load finish + weight`` — both are times no
        completion of this prefix can beat.  Without weights this is just
        the realized makespan.
        """
        if self._weights is None:
            return self.makespan
        return self._floor

    @property
    def executions(self) -> Dict[str, ExecutionEntry]:
        """Executed entries so far (do not mutate)."""
        return self._executions

    @property
    def load_sequence(self) -> Tuple[str, ...]:
        """Names of the loads issued so far, in issue order."""
        return tuple(entry.subtask for entry in self._loads)

    # ------------------------------------------------------------------ #
    # Dispatch mechanics (mirrors the monolithic replay loop exactly)
    # ------------------------------------------------------------------ #
    def _predecessor_ready_time(self, name: str, resource: ResourceId) -> float:
        ready = self.release
        executions = self._executions
        communication = self.communication
        for predecessor in self._core.predecessors[name]:
            finish = executions[predecessor].finish
            if communication is not None:
                finish += communication(predecessor, name,
                                        executions[predecessor].resource,
                                        resource)
            if finish > ready:
                ready = finish
        return ready

    def _executable_head(self, resource: ResourceId) -> Optional[str]:
        sequence = self._core.sequences[resource]
        index = self._next_index[resource]
        if index >= len(sequence):
            return None
        name = sequence[index]
        executions = self._executions
        if any(p not in executions for p in self._core.predecessors[name]):
            return None
        if name in self._pending:
            return None
        return name

    def _execute(self, name: str, resource: ResourceId) -> None:
        ready = self._predecessor_ready_time(name, resource)
        free = self._resource_free[resource]
        load_done = self._load_finish.get(name)
        candidates: List[Tuple[StartConstraint, float]] = [
            (StartConstraint.RELEASE, self.release),
            (StartConstraint.PREDECESSOR, ready),
            (StartConstraint.RESOURCE, free),
        ]
        if load_done is not None:
            candidates.append((StartConstraint.LOAD, load_done))
        start = max(value for _, value in candidates)
        constraint = StartConstraint.RELEASE
        for kind, value in candidates:
            if value >= start - TIME_EPSILON:
                constraint = kind
                break
        # Prefer reporting LOAD only when it is strictly the binding reason.
        if constraint is not StartConstraint.LOAD and load_done is not None:
            non_load_max = max(value for kind, value in candidates
                               if kind is not StartConstraint.LOAD)
            if load_done > non_load_max + TIME_EPSILON:
                constraint = StartConstraint.LOAD
        execution_time = self._core.exec_time[name]
        entry = ExecutionEntry(
            subtask=name,
            resource=resource,
            start=start,
            finish=start + execution_time,
            constraint=constraint,
            ideal_start=self.release + self._core.ideal_start[name],
        )
        self._executions[name] = entry
        if self._frame is not None:
            self._frame.append((name, resource, free))
        self._resource_free[resource] = entry.finish
        self._next_index[resource] += 1
        if entry.finish > self._realized:
            self._realized = entry.finish
        if self._weights is not None:
            floor = entry.finish + self._tails[name]
            if floor > self._floor:
                self._floor = floor

    def _advance(self) -> None:
        """Execute everything executable (same batch order as the monolith)."""
        resources = self._core.resources
        while True:
            ready_names = []
            for resource in resources:
                head = self._executable_head(resource)
                if head is not None:
                    ready_names.append((head, resource))
            if not ready_names:
                break
            for name, resource in ready_names:
                self._execute(name, resource)

    # ------------------------------------------------------------------ #
    # Load issue
    # ------------------------------------------------------------------ #
    def issuable(self) -> List[Tuple[str, float]]:
        """Pending loads at the head of their tile queue: (name, enable)."""
        found: List[Tuple[str, float]] = []
        core = self._core
        for name in self._pending:
            resource = core.resource_of[name]
            if core.position[name] != self._next_index[resource]:
                continue
            enable = self._resource_free[resource]
            if self.on_demand:
                if any(p not in self._executions
                       for p in core.predecessors[name]):
                    continue
                enable = max(enable,
                             self._predecessor_ready_time(name, resource))
            found.append((name, enable))
        return found

    def choices(self) -> List[Tuple[str, float]]:
        """The horizon-enabled load candidates the dispatcher may issue next.

        The greedy dispatcher never idles the port past the earliest enable
        time of an issuable load, so only candidates enabled by
        ``max(port-free time, earliest enable)`` can be issued next — by any
        priority order.  Branching over this set explores exactly the
        priority-order schedule space.
        """
        candidates = self.issuable()
        if not candidates:
            return []
        horizon = max(self.controller_time,
                      min(enable for _, enable in candidates))
        return [(name, enable) for name, enable in candidates
                if enable <= horizon + TIME_EPSILON]

    def _issue(self, name: str, enable: float) -> None:
        start = max(self.controller_time, enable)
        finish = start + self.latency
        core = self._core
        self._loads.append(
            LoadEntry(
                subtask=name,
                configuration=core.configuration[name],
                resource=core.resource_of[name],
                start=start,
                finish=finish,
            )
        )
        self._load_finish[name] = finish
        self.controller_time = finish
        self._pending.discard(name)
        if self._weights is not None:
            floor = finish + self._weights[name]
            if floor > self._floor:
                self._floor = floor
        self._advance()

    def extend(self, name: str) -> "ReplayState":
        """Issue ``name`` next and return the resulting state.

        ``name`` must be one of :meth:`choices`; the receiver is left
        untouched.  The cost is one dispatch step plus the executions the
        load unblocks (the snapshot copy is linear in the frontier size).
        """
        for candidate, enable in self.choices():
            if candidate == name:
                return self.extend_choice(candidate, enable)
        raise SchedulingError(
            f"load {name!r} cannot be issued next: not a horizon-enabled "
            f"candidate of this replay state"
        )

    def extend_choice(self, name: str, enable: float) -> "ReplayState":
        """Unchecked :meth:`extend` for a ``(name, enable)`` pair.

        The pair must come from this state's :meth:`choices` — the search
        loop already holds that list, so re-deriving it per child edge
        (as the validating :meth:`extend` does) would double the dispatch
        work on the branch-and-bound hot path.
        """
        child = self._clone()
        child._issue(name, enable)
        return child

    def push(self, name: str) -> float:
        """Issue ``name`` next **in place**, recording an undo frame.

        ``name`` must be one of :meth:`choices`.  Returns the latest finish
        time among the executions this push triggered (``-inf`` when the
        load unblocked nothing yet) — the *future contribution* of this
        dispatch step, which memoizing searches aggregate per subtree.  The
        matching :meth:`pop` restores the pre-push state exactly.
        """
        for candidate, enable in self.choices():
            if candidate == name:
                return self.push_choice(candidate, enable)
        raise SchedulingError(
            f"load {name!r} cannot be pushed next: not a horizon-enabled "
            f"candidate of this replay state"
        )

    def push_choice(self, name: str, enable: float) -> float:
        """Unchecked :meth:`push` for a ``(name, enable)`` pair from
        :meth:`choices` (same contract as :meth:`extend_choice`)."""
        records: List[Tuple[str, ResourceId, float]] = []
        self._undo.append((name, self.controller_time, self._floor,
                           self._realized, records))
        self._frame = records
        try:
            self._issue(name, enable)
        finally:
            self._frame = None
        if not records:
            return float("-inf")
        executions = self._executions
        return max(executions[executed].finish for executed, _, _ in records)

    def pop(self) -> str:
        """Undo the most recent :meth:`push` in place; returns its load.

        Every quantity a push touched is restored from its undo frame:
        executions are deleted in reverse batch order, each affected
        resource gets its pre-execution free time and frontier index back,
        and the load entry, controller time, floors and realized makespan
        revert to their recorded values.
        """
        if not self._undo:
            raise SchedulingError(
                "pop() without a matching push() on this replay state"
            )
        name, controller, floor, realized, records = self._undo.pop()
        executions = self._executions
        resource_free = self._resource_free
        next_index = self._next_index
        for executed, resource, previous_free in reversed(records):
            del executions[executed]
            resource_free[resource] = previous_free
            next_index[resource] -= 1
        load = self._loads.pop()
        if load.subtask != name:
            raise SchedulingError(
                f"undo log out of sync: frame recorded {name!r} but the "
                f"latest load is {load.subtask!r} (pop() cannot undo loads "
                "issued by run()/extend_greedy())"
            )
        del self._load_finish[name]
        self._pending.add(name)
        self.controller_time = controller
        self._floor = floor
        self._realized = realized
        return name

    def extend_greedy(self, rank: Mapping[str, int]) -> "ReplayState":
        """Issue the highest-priority enabled load (the dispatcher's pick)."""
        enabled = self.choices()
        if not enabled:
            raise self._stall_error()
        fallback = len(rank)
        name, enable = min(
            enabled,
            key=lambda item: (rank.get(item[0], fallback), item[1], item[0]),
        )
        child = self._clone()
        child._issue(name, enable)
        return child

    def run(self, rank: Mapping[str, int]) -> "ReplayState":
        """Drive this state to completion under one priority rank (in place).

        This is the monolithic replay: repeatedly issue the greedy pick and
        advance.  It mutates and returns ``self`` — callers that need to
        branch must use :meth:`extend` instead.
        """
        fallback = len(rank)
        while not self.is_complete:
            enabled = self.choices()
            if not enabled:
                raise self._stall_error()
            name, enable = min(
                enabled,
                key=lambda item: (rank.get(item[0], fallback),
                                  item[1], item[0]),
            )
            self._issue(name, enable)
        return self

    def _stall_error(self) -> InfeasibleScheduleError:
        graph = self._core.graph
        blocked = sorted(set(graph.subtask_names) - set(self._executions))
        return InfeasibleScheduleError(
            f"schedule replay for graph {graph.name!r} stalled; blocked "
            f"subtasks: {blocked}"
        )

    # ------------------------------------------------------------------ #
    # Materialization & search support
    # ------------------------------------------------------------------ #
    def finish(self) -> TimedSchedule:
        """Materialize the completed replay as a :class:`TimedSchedule`."""
        if not self.is_complete:
            raise self._stall_error()
        loads = tuple(self._loads)
        return TimedSchedule(
            placed=self._placed,
            executions=dict(self._executions),
            loads=loads,
            release_time=self.release,
            controller_start=(loads[0].start if loads
                              else self.controller_time),
        )

    def signature(self) -> Tuple:
        """Canonical description of everything that shapes the future.

        Two states with equal signatures evolve identically from here on:
        the signature captures the pending-load set, the port-free time,
        the frontier of every unfinished resource, the finish times of
        executed subtasks that still have unexecuted successors and the
        completion times of issued-but-not-yet-consumed loads.  Finished
        history that can no longer influence any future start is deliberately
        *forgotten*, which is what makes prefix permutations that converge
        to the same dispatcher state collide in a dominance table.

        The realized makespan is **not** part of the signature — it feeds
        the final result only through a ``max``, so among equal signatures
        the one with the smaller realized makespan dominates.
        """
        executions = self._executions
        core = self._core
        live_finishes = []
        for name, entry in executions.items():
            if any(succ not in executions for succ in core.successors[name]):
                live_finishes.append((name, entry.finish))
        live_finishes.sort()
        frontier = []
        for resource in core.resources:
            index = self._next_index[resource]
            if index < len(core.sequences[resource]):
                frontier.append((resource, index,
                                 self._resource_free[resource]))
        issued_pending = sorted(
            (name, finish) for name, finish in self._load_finish.items()
            if name not in executions
        )
        return (frozenset(self._pending), self.controller_time,
                tuple(frontier), tuple(live_finishes), tuple(issued_pending))
