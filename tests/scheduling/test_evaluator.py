"""Unit tests for the schedule replay engine (the timing model core)."""

import pytest

from repro.graphs.subtask import drhw_subtask
from repro.graphs.taskgraph import TaskGraph, chain_graph
from repro.platform.description import Platform
from repro.scheduling.evaluator import needed_loads, replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.schedule import StartConstraint

LATENCY = 4.0


def _placed(graph, tiles=8):
    return build_initial_schedule(graph, Platform(tile_count=tiles))


class TestNoLoads:
    def test_replay_without_loads_matches_ideal(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, loads_needed=[])
            assert timed.overhead == pytest.approx(0.0)
            assert timed.makespan == pytest.approx(placed.makespan)
            for name in graph.subtask_names:
                assert timed.executions[name].start == pytest.approx(
                    placed.ideal_start(name)
                )

    def test_release_time_shifts_everything(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, LATENCY, loads_needed=[],
                                release_time=100.0)
        assert timed.executions["s0"].start == pytest.approx(100.0)
        assert timed.span == pytest.approx(placed.makespan)
        assert timed.overhead == pytest.approx(0.0)


class TestChainWithLoads:
    def test_prefetch_hides_all_but_first(self, chain4):
        placed = _placed(chain4)
        loads = placed.drhw_names
        timed = replay_schedule(placed, LATENCY, loads)
        # Only the first subtask waits for its own load (4 ms).
        assert timed.overhead == pytest.approx(4.0)
        assert timed.hidden_load_count() == 3
        assert timed.executions["s0"].constraint is StartConstraint.LOAD

    def test_on_demand_exposes_every_load(self, chain4):
        placed = _placed(chain4)
        loads = placed.drhw_names
        timed = replay_schedule(placed, LATENCY, loads, on_demand=True)
        assert timed.overhead == pytest.approx(4.0 * len(chain4))
        assert timed.hidden_load_count() == 0

    def test_zero_latency_means_zero_overhead(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, 0.0, placed.drhw_names)
        assert timed.overhead == pytest.approx(0.0)

    def test_reused_subtasks_do_not_load(self, chain4):
        placed = _placed(chain4)
        loads = needed_loads(placed, reused=["s0"])
        assert "s0" not in loads
        timed = replay_schedule(placed, LATENCY, loads)
        assert timed.overhead == pytest.approx(0.0)
        assert timed.load_count == 3


class TestControllerSerialization:
    def test_single_port_loads_never_overlap(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            loads = sorted(timed.loads, key=lambda load: load.start)
            for earlier, later in zip(loads, loads[1:]):
                assert later.start >= earlier.finish - 1e-9

    def test_independent_subtasks_queue_on_controller(self):
        graph = TaskGraph("indep")
        for index in range(4):
            graph.add_subtask(drhw_subtask(f"s{index}", 10.0))
        placed = _placed(graph)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        # Loads serialize on the single port: the k-th subtask cannot start
        # before (k+1) * latency.
        starts = sorted(entry.start for entry in timed.executions.values())
        for index, start in enumerate(starts):
            assert start == pytest.approx((index + 1) * LATENCY)

    def test_controller_available_delays_loads_only(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, LATENCY, ["s1"],
                                controller_available=100.0)
        # s0 is not loaded and starts immediately; s1 waits for the port.
        assert timed.executions["s0"].start == pytest.approx(0.0)
        assert timed.executions["s1"].start == pytest.approx(104.0)


class TestLoadEnablement:
    def test_load_waits_for_tile_to_be_free(self, chain4):
        # Force both subtasks onto a single tile: the second load can only
        # start once the first subtask finished executing.
        placed = build_initial_schedule(chain4, Platform(tile_count=1))
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        first_finish = timed.executions["s0"].finish
        second_load = next(load for load in timed.loads if load.subtask == "s1")
        assert second_load.start >= first_finish - 1e-9

    def test_priority_order_respected_for_simultaneously_enabled_loads(self):
        graph = TaskGraph("prio")
        graph.add_subtask(drhw_subtask("a", 10.0))
        graph.add_subtask(drhw_subtask("b", 10.0))
        placed = _placed(graph)
        for order in (["a", "b"], ["b", "a"]):
            timed = replay_schedule(placed, LATENCY, ["a", "b"],
                                    priority_order=order)
            loads = {load.subtask: load for load in timed.loads}
            assert loads[order[0]].start < loads[order[1]].start


class TestExecutionSemantics:
    def test_execution_starts_after_predecessors(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            for producer, consumer in graph.dependencies():
                assert timed.executions[consumer].start >= \
                    timed.executions[producer].finish - 1e-9

    def test_execution_starts_after_its_load(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            load_finish = {load.subtask: load.finish for load in timed.loads}
            for name, finish in load_finish.items():
                assert timed.executions[name].start >= finish - 1e-9

    def test_never_starts_before_ideal(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            for name in graph.subtask_names:
                assert timed.executions[name].start >= \
                    placed.ideal_start(name) - 1e-9

    def test_isp_subtasks_never_load(self, mixed_graph):
        placed = _placed(mixed_graph)
        timed = replay_schedule(placed, LATENCY, mixed_graph.subtask_names)
        assert all(load.subtask != "sw_b" for load in timed.loads)

    def test_idle_tail_reported(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        last_load_finish = max(load.finish for load in timed.loads)
        assert timed.controller_idle_tail() == pytest.approx(
            timed.makespan - last_load_finish
        )

    def test_gantt_rows_cover_all_entries(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        rows = timed.gantt_rows()
        assert len(rows) == len(chain4) + timed.load_count


class TestDelayAccounting:
    def test_delay_generators_are_load_bound(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            for name in timed.delay_generating_subtasks():
                entry = timed.executions[name]
                assert entry.load_bound
                assert entry.delay > 0

    def test_positive_overhead_implies_delay_generator(self, benchmark_graphs):
        for graph in benchmark_graphs:
            placed = _placed(graph)
            timed = replay_schedule(placed, LATENCY, placed.drhw_names)
            if timed.overhead > 1e-9:
                assert timed.delay_generating_subtasks()

    def test_overhead_percent(self, chain4):
        placed = _placed(chain4)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        assert timed.overhead_percent == pytest.approx(
            100.0 * timed.overhead / placed.makespan
        )
