"""Tests for the incremental replay kernel (:mod:`repro.scheduling.replay`).

The central guarantee is *bit-identity*: driving a
:class:`~repro.scheduling.replay.ReplayState` load by load must produce
exactly the schedule the monolithic replay produced before the kernel
existed.  To pin that against the historical behaviour (not just against
the current wrapper), this module carries a verbatim copy of the seed's
monolithic ``replay_schedule`` as a reference implementation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.graphs.analysis import subtask_weights
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.replay import ReplayState, priority_rank
from repro.scheduling.schedule import (
    ExecutionEntry,
    LoadEntry,
    PlacedSchedule,
    ResourceId,
    StartConstraint,
    TIME_EPSILON,
    TimedSchedule,
)


# ---------------------------------------------------------------------- #
# Reference: the seed's monolithic replay loop, copied verbatim
# ---------------------------------------------------------------------- #
def reference_replay_schedule(placed: PlacedSchedule,
                              reconfiguration_latency: float,
                              loads_needed,
                              priority_order: Optional[Sequence[str]] = None,
                              *,
                              on_demand: bool = False,
                              release_time: float = 0.0,
                              controller_available: Optional[float] = None,
                              communication=None) -> TimedSchedule:
    """The pre-kernel monolithic replay (regression oracle)."""
    if reconfiguration_latency < 0:
        raise SchedulingError("reconfiguration latency must be non-negative")
    graph = placed.graph

    drhw_names = set(placed.drhw_names)
    pending_loads: Set[str] = set()
    for name in loads_needed:
        placed.placement(name)
        if name in drhw_names:
            pending_loads.add(name)

    controller_time = max(release_time,
                          controller_available if controller_available is not None
                          else release_time)

    explicit_rank: Dict[str, int] = {}
    if priority_order is not None:
        for index, name in enumerate(priority_order):
            explicit_rank.setdefault(name, index)
    fallback_base = len(explicit_rank)
    fallback_order = sorted(
        (name for name in pending_loads if name not in explicit_rank),
        key=lambda n: (placed.ideal_start(n), n),
    )
    rank = dict(explicit_rank)
    for offset, name in enumerate(fallback_order):
        rank[name] = fallback_base + offset

    resource_sequences: Dict[ResourceId, List[str]] = {
        resource: placed.resource_order(resource)
        for resource in placed.resources
    }
    next_index: Dict[ResourceId, int] = {r: 0 for r in resource_sequences}
    resource_free: Dict[ResourceId, float] = {r: release_time
                                              for r in resource_sequences}

    executions: Dict[str, ExecutionEntry] = {}
    load_finish: Dict[str, float] = {}
    load_entries: List[LoadEntry] = []

    total = len(graph)

    def predecessor_ready_time(name: str, resource: ResourceId) -> float:
        ready = release_time
        for predecessor in graph.predecessors(name):
            finish = executions[predecessor].finish
            if communication is not None:
                finish += communication(predecessor, name,
                                        executions[predecessor].resource,
                                        resource)
            ready = max(ready, finish)
        return ready

    def executable_head(resource: ResourceId) -> Optional[str]:
        sequence = resource_sequences[resource]
        index = next_index[resource]
        if index >= len(sequence):
            return None
        name = sequence[index]
        if any(p not in executions for p in graph.predecessors(name)):
            return None
        if name in pending_loads:
            return None
        return name

    def execute(name: str, resource: ResourceId) -> None:
        ready = predecessor_ready_time(name, resource)
        free = resource_free[resource]
        load_done = load_finish.get(name)
        candidates: List[Tuple[StartConstraint, float]] = [
            (StartConstraint.RELEASE, release_time),
            (StartConstraint.PREDECESSOR, ready),
            (StartConstraint.RESOURCE, free),
        ]
        if load_done is not None:
            candidates.append((StartConstraint.LOAD, load_done))
        start = max(value for _, value in candidates)
        constraint = StartConstraint.RELEASE
        for kind, value in candidates:
            if value >= start - TIME_EPSILON:
                constraint = kind
                break
        if constraint is not StartConstraint.LOAD and load_done is not None:
            non_load_max = max(value for kind, value in candidates
                               if kind is not StartConstraint.LOAD)
            if load_done > non_load_max + TIME_EPSILON:
                constraint = StartConstraint.LOAD
        execution_time = graph.execution_time(name)
        entry = ExecutionEntry(
            subtask=name,
            resource=resource,
            start=start,
            finish=start + execution_time,
            constraint=constraint,
            ideal_start=release_time + placed.ideal_start(name),
        )
        executions[name] = entry
        resource_free[resource] = entry.finish
        next_index[resource] += 1

    def issuable_loads() -> List[Tuple[str, float]]:
        found: List[Tuple[str, float]] = []
        for name in pending_loads:
            resource = placed.resource_of(name)
            if placed.position_on_resource(name) != next_index[resource]:
                continue
            enable = resource_free[resource]
            if on_demand:
                if any(p not in executions for p in graph.predecessors(name)):
                    continue
                enable = max(enable, predecessor_ready_time(name, resource))
            found.append((name, enable))
        return found

    while len(executions) < total:
        progressed = False
        while True:
            ready_names = []
            for resource in resource_sequences:
                head = executable_head(resource)
                if head is not None:
                    ready_names.append((head, resource))
            if not ready_names:
                break
            for name, resource in ready_names:
                execute(name, resource)
                progressed = True
        if len(executions) >= total:
            break

        candidates = issuable_loads()
        if candidates:
            horizon = max(controller_time,
                          min(enable for _, enable in candidates))
            enabled = [(name, enable) for name, enable in candidates
                       if enable <= horizon + TIME_EPSILON]
            name, enable = min(
                enabled,
                key=lambda item: (rank.get(item[0], len(rank)), item[1], item[0]),
            )
            start = max(controller_time, enable)
            finish = start + reconfiguration_latency
            resource = placed.resource_of(name)
            load_entries.append(
                LoadEntry(
                    subtask=name,
                    configuration=graph.subtask(name).configuration,
                    resource=resource,
                    start=start,
                    finish=finish,
                )
            )
            load_finish[name] = finish
            controller_time = finish
            pending_loads.discard(name)
            progressed = True

        if not progressed:
            blocked = sorted(set(graph.subtask_names) - set(executions))
            raise InfeasibleScheduleError(
                f"schedule replay for graph {graph.name!r} stalled; blocked "
                f"subtasks: {blocked}"
            )

    return TimedSchedule(
        placed=placed,
        executions=executions,
        loads=tuple(load_entries),
        release_time=release_time,
        controller_start=controller_time if not load_entries else load_entries[0].start,
    )


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def assert_bit_identical(left: TimedSchedule, right: TimedSchedule) -> None:
    """Strict structural equality, including entry insertion order."""
    assert list(left.executions) == list(right.executions)
    assert left.executions == right.executions
    assert left.loads == right.loads
    assert left.release_time == right.release_time
    assert left.controller_start == right.controller_start


def incremental_replay(placed: PlacedSchedule, latency: float, loads,
                       priority_order=None, *, on_demand=False,
                       release_time=0.0, controller_available=None
                       ) -> TimedSchedule:
    """Drive the kernel one public ``extend`` at a time (greedy picks)."""
    state = ReplayState.start(
        placed, latency, loads, on_demand=on_demand,
        release_time=release_time, controller_available=controller_available,
    )
    rank = priority_rank(placed, state.pending_loads, priority_order)
    fallback = len(rank)
    states = [state]
    while not state.is_complete:
        choices = state.choices()
        assert choices, "kernel stalled where the dispatcher would not"
        name, _ = min(choices,
                      key=lambda item: (rank.get(item[0], fallback),
                                        item[1], item[0]))
        state = state.extend(name)
        states.append(state)
    # Earlier snapshots must remain untouched by the extensions.
    for earlier, later in zip(states, states[1:]):
        assert len(later.executions) >= len(earlier.executions)
        assert set(earlier.load_sequence).issubset(set(later.load_sequence))
    return state.finish()


#: Problem instances: (subtask count, edge probability, seed, tiles, latency).
problem_params = st.tuples(
    st.integers(min_value=1, max_value=9),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=8.0),
)


def build_placed(params):
    count, probability, seed, tiles, latency = params
    graph = random_dag("replay", count=count, edge_probability=probability,
                       time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                       seed=seed)
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return placed, latency


def shuffled_order(placed, order_seed):
    loads = sorted(placed.drhw_names)
    random.Random(order_seed).shuffle(loads)
    return tuple(loads)


# ---------------------------------------------------------------------- #
# Property tests: bit-identity across the three replay paths
# ---------------------------------------------------------------------- #
class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(params=problem_params, order_seed=st.integers(0, 1000),
           on_demand=st.booleans(),
           release=st.floats(min_value=0.0, max_value=50.0),
           controller_offset=st.floats(min_value=-5.0, max_value=30.0))
    def test_incremental_matches_monolithic_and_reference(
            self, params, order_seed, on_demand, release, controller_offset):
        """Kernel-driven, wrapper and seed-reference replays are identical."""
        placed, latency = build_placed(params)
        order = shuffled_order(placed, order_seed)
        kwargs = dict(
            priority_order=order,
            on_demand=on_demand,
            release_time=release,
            controller_available=release + controller_offset,
        )
        reference = reference_replay_schedule(placed, latency,
                                              placed.drhw_names, **kwargs)
        monolithic = replay_schedule(placed, latency, placed.drhw_names,
                                     **kwargs)
        incremental = incremental_replay(placed, latency, placed.drhw_names,
                                         **kwargs)
        assert_bit_identical(monolithic, reference)
        assert_bit_identical(incremental, reference)

    @settings(max_examples=40, deadline=None)
    @given(params=problem_params, reuse_seed=st.integers(0, 1000))
    def test_partial_load_sets_match_reference(self, params, reuse_seed):
        """Identity also holds when only a subset of loads is needed."""
        placed, latency = build_placed(params)
        drhw = sorted(placed.drhw_names)
        rng = random.Random(reuse_seed)
        loads = [name for name in drhw if rng.random() < 0.6]
        reference = reference_replay_schedule(placed, latency, loads)
        monolithic = replay_schedule(placed, latency, loads)
        incremental = incremental_replay(placed, latency, loads)
        assert_bit_identical(monolithic, reference)
        assert_bit_identical(incremental, reference)

    @settings(max_examples=30, deadline=None)
    @given(params=problem_params)
    def test_no_priority_order_falls_back_identically(self, params):
        """The ideal-start fallback ranking matches the reference."""
        placed, latency = build_placed(params)
        reference = reference_replay_schedule(placed, latency,
                                              placed.drhw_names)
        monolithic = replay_schedule(placed, latency, placed.drhw_names)
        assert_bit_identical(monolithic, reference)


# ---------------------------------------------------------------------- #
# Kernel unit tests
# ---------------------------------------------------------------------- #
class TestReplayState:
    def _state(self, chain4, latency=4.0, **kwargs):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        return placed, ReplayState.start(placed, latency, placed.drhw_names,
                                         **kwargs)

    def test_negative_latency_rejected(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        with pytest.raises(SchedulingError):
            ReplayState.start(placed, -1.0, placed.drhw_names)

    def test_unknown_load_rejected(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        with pytest.raises(Exception):
            ReplayState.start(placed, 4.0, ["ghost"])

    def test_extend_rejects_non_choice(self, chain4):
        # On a single tile the chain shares one queue: only the first
        # subtask's load is at the tile head.
        placed = build_initial_schedule(chain4, Platform(tile_count=1))
        state = ReplayState.start(placed, 4.0, placed.drhw_names)
        choice_names = {name for name, _ in state.choices()}
        assert choice_names == {"s0"}
        with pytest.raises(SchedulingError):
            state.extend("s2")

    def test_extend_does_not_mutate_parent(self, chain4):
        _, state = self._state(chain4)
        pending_before = state.pending_loads
        executed_before = dict(state.executions)
        child = state.extend("s0")
        assert state.pending_loads == pending_before
        assert dict(state.executions) == executed_before
        assert child.pending_loads == pending_before - {"s0"}
        assert child.load_sequence == ("s0",)

    def test_finish_requires_completion(self, chain4):
        _, state = self._state(chain4)
        with pytest.raises(InfeasibleScheduleError):
            state.finish()

    def test_complete_without_loads(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        state = ReplayState.start(placed, 4.0, [])
        assert state.is_complete
        timed = state.finish()
        assert timed.load_count == 0
        assert timed.makespan == pytest.approx(placed.makespan)

    def test_makespan_and_floor_grow_monotonically(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        weights = subtask_weights(placed.graph)
        state = ReplayState.start(placed, 4.0, placed.drhw_names,
                                  weights=weights)
        floors = [state.critical_floor]
        while not state.is_complete:
            name, _ = state.choices()[0]
            state = state.extend(name)
            floors.append(state.critical_floor)
        assert floors == sorted(floors)
        # The floor is admissible: never above the realized makespan at the end.
        assert floors[-1] <= state.makespan + 1e-9

    def test_signature_collides_for_interchangeable_prefixes(self, diamond):
        """Permuting two already-consumed loads converges to one signature."""
        placed = build_initial_schedule(diamond, Platform(tile_count=4))
        state = ReplayState.start(placed, 1.0, placed.drhw_names)
        first = {name for name, _ in state.choices()}
        assert "src" in first
        after_src = state.extend("src")
        names = {name for name, _ in after_src.choices()}
        assert {"left", "right"}.issubset(names)
        left_right = after_src.extend("left").extend("right")
        right_left = after_src.extend("right").extend("left")
        # Both branch loads consumed in either order: once the realized
        # history that cannot influence later starts is forgotten, the
        # dispatcher states are indistinguishable for the future.
        assert left_right.executions == right_left.executions
        assert left_right.signature() == right_left.signature()

    def test_push_matches_extend(self, chain4):
        """A push mutates in place to exactly the extend() child state."""
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        state = ReplayState.start(placed, 4.0, placed.drhw_names)
        child = state.extend("s0")
        executed_before = set(state.executions)
        delta = state.push("s0")
        assert state.signature() == child.signature()
        assert state.makespan == child.makespan
        assert state.load_sequence == child.load_sequence
        # The reported future contribution is exactly the latest finish
        # among the executions this push triggered (not the prefix's).
        new_finishes = [entry.finish for name, entry in
                        state.executions.items()
                        if name not in executed_before]
        assert new_finishes, "the chain head load must unblock s0"
        assert delta == max(new_finishes)

    def test_pop_restores_the_pre_push_state(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        state = ReplayState.start(placed, 4.0, placed.drhw_names)
        before = (state.signature(), state.makespan, state.pending_loads,
                  dict(state.executions))
        state.push("s0")
        assert state.undo_depth == 1
        assert state.pop() == "s0"
        assert state.undo_depth == 0
        after = (state.signature(), state.makespan, state.pending_loads,
                 dict(state.executions))
        assert before == after

    def test_push_rejects_non_choice(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=1))
        state = ReplayState.start(placed, 4.0, placed.drhw_names)
        with pytest.raises(SchedulingError):
            state.push("s2")

    def test_pop_without_push_rejected(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        state = ReplayState.start(placed, 4.0, placed.drhw_names)
        with pytest.raises(SchedulingError):
            state.pop()

    def test_run_matches_extend_greedy(self, chain4):
        placed = build_initial_schedule(chain4, Platform(tile_count=8))
        order = tuple(sorted(placed.drhw_names))
        rank = priority_rank(placed, placed.drhw_names, order)
        driven = ReplayState.start(placed, 4.0, placed.drhw_names)
        while not driven.is_complete:
            driven = driven.extend_greedy(rank)
        run = ReplayState.start(placed, 4.0, placed.drhw_names).run(rank)
        assert_bit_identical(driven.finish(), run.finish())


# ---------------------------------------------------------------------- #
# Undo correctness: push/pop interleavings equal fresh replays
# ---------------------------------------------------------------------- #
class TestUndoCorrectness:
    """Any interleaving of ``push``/``pop`` equals a fresh replay.

    The branch-and-bound search leans entirely on this: it walks the whole
    dispatch tree on one state, so a single stale dict entry or missed
    restore after ``pop`` silently corrupts every sibling subtree explored
    afterwards.
    """

    @settings(max_examples=60, deadline=None)
    @given(params=problem_params, walk_seed=st.integers(0, 10_000),
           push_bias=st.floats(min_value=0.3, max_value=0.9))
    def test_interleaved_walk_matches_fresh_replay(self, params, walk_seed,
                                                   push_bias):
        """After a random push/pop walk, the state is bit-equal to a fresh
        ``start`` + pushes of the surviving load sequence."""
        placed, latency = build_placed(params)
        state = ReplayState.start(placed, latency, placed.drhw_names)
        rng = random.Random(walk_seed)
        surviving: List[str] = []
        for _ in range(50):
            choices = state.choices()
            if choices and (not surviving or rng.random() < push_bias):
                name, enable = rng.choice(choices)
                state.push_choice(name, enable)
                surviving.append(name)
            elif surviving:
                popped = state.pop()
                assert popped == surviving.pop()
        assert state.undo_depth == len(surviving)
        assert state.load_sequence == tuple(surviving)

        fresh = ReplayState.start(placed, latency, placed.drhw_names)
        for name in surviving:
            fresh.push(name)
        assert state.signature() == fresh.signature()
        assert state.makespan == fresh.makespan
        assert state.critical_floor == fresh.critical_floor
        assert dict(state.executions) == dict(fresh.executions)
        assert state.pending_loads == fresh.pending_loads

        # Drive both to completion identically: the finished schedules must
        # be bit-identical, entry order included.
        while not state.is_complete:
            name, enable = state.choices()[0]
            state.push_choice(name, enable)
            fresh.push(name)
        assert_bit_identical(state.finish(), fresh.finish())

    @settings(max_examples=30, deadline=None)
    @given(params=problem_params, order_seed=st.integers(0, 1000))
    def test_full_unwind_restores_the_root(self, params, order_seed):
        """Pushing to completion and popping everything is the identity."""
        placed, latency = build_placed(params)
        state = ReplayState.start(placed, latency, placed.drhw_names)
        reference = ReplayState.start(placed, latency, placed.drhw_names)
        before = (state.signature(), state.makespan, state.pending_loads,
                  dict(state.executions), state.controller_time)
        rank = priority_rank(placed, state.pending_loads,
                             shuffled_order(placed, order_seed))
        fallback = len(rank)
        pushed = 0
        while not state.is_complete:
            choices = state.choices()
            if not choices:
                break
            name, enable = min(
                choices,
                key=lambda item: (rank.get(item[0], fallback),
                                  item[1], item[0]),
            )
            state.push_choice(name, enable)
            pushed += 1
        for _ in range(pushed):
            state.pop()
        after = (state.signature(), state.makespan, state.pending_loads,
                 dict(state.executions), state.controller_time)
        assert before == after
        assert state.signature() == reference.signature()
