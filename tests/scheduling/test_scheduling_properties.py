"""Property-based tests for the scheduling invariants of DESIGN.md."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.noprefetch import OnDemandScheduler
from repro.scheduling.prefetch_bb import OptimalPrefetchScheduler
from repro.scheduling.prefetch_list import ListPrefetchScheduler

#: Problem instances: (subtask count, edge probability, seed, tiles, latency).
problem_params = st.tuples(
    st.integers(min_value=1, max_value=9),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=8.0),
)


def build_problem(params):
    count, probability, seed, tiles, latency = params
    graph = random_dag("prop", count=count, edge_probability=probability,
                       time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                       seed=seed)
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return PrefetchProblem(placed, latency)


@settings(max_examples=50, deadline=None)
@given(params=problem_params)
def test_replay_respects_all_constraints(params):
    """A timed schedule never violates precedence, tile or load constraints."""
    problem = build_problem(params)
    placed = problem.placed
    graph = placed.graph
    timed = replay_schedule(placed, problem.reconfiguration_latency,
                            problem.loads)
    load_finish = {load.subtask: load.finish for load in timed.loads}
    # precedence
    for producer, consumer in graph.dependencies():
        assert timed.executions[consumer].start >= \
            timed.executions[producer].finish - 1e-9
    # resource exclusivity
    for resource in placed.resources:
        order = placed.resource_order(resource)
        for earlier, later in zip(order, order[1:]):
            assert timed.executions[later].start >= \
                timed.executions[earlier].finish - 1e-9
    # loads precede executions and never overlap on the single port
    for name, finish in load_finish.items():
        assert timed.executions[name].start >= finish - 1e-9
    ordered_loads = sorted(timed.loads, key=lambda load: load.start)
    for earlier, later in zip(ordered_loads, ordered_loads[1:]):
        assert later.start >= earlier.finish - 1e-9


@settings(max_examples=50, deadline=None)
@given(params=problem_params)
def test_overhead_is_non_negative_and_bounded(params):
    """0 <= overhead <= loads * latency for any prefetch scheduler."""
    problem = build_problem(params)
    for scheduler in (OnDemandScheduler(), ListPrefetchScheduler()):
        result = scheduler.schedule(problem)
        assert result.overhead >= -1e-9
        bound = problem.load_count * problem.reconfiguration_latency
        assert result.overhead <= bound + 1e-6


@settings(max_examples=50, deadline=None)
@given(params=problem_params)
def test_prefetch_rarely_worse_than_no_prefetch(params):
    """Greedy prefetching may lose to on-demand loading only by bounded slack.

    A universal "prefetch <= on-demand" claim does not hold (a low-urgency
    load enabled early can occupy the single port ahead of a critical
    on-demand request), but any loss is bounded by the port time the early
    loads can steal: one latency per load.
    """
    problem = build_problem(params)
    prefetch = ListPrefetchScheduler().schedule(problem)
    baseline = OnDemandScheduler().schedule(problem)
    slack_bound = problem.load_count * problem.reconfiguration_latency
    assert prefetch.makespan <= baseline.makespan + slack_bound + 1e-9


#: Instances for the exact engine.  The historical leaf-replaying search
#: had to cap these at 7 subtasks (9-subtask sparse DAGs took minutes);
#: the incremental stateful search explores dispatch orders with realized
#: bounds and prefix dominance, which keeps full 9-subtask problems in
#: milliseconds.
bb_params = st.tuples(
    st.integers(min_value=1, max_value=9),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=8.0),
)


@pytest.mark.slow
@settings(max_examples=30, deadline=None)
@given(params=bb_params)
def test_branch_and_bound_is_lower_bound(params):
    problem = build_problem(params)
    optimal = OptimalPrefetchScheduler().schedule(problem)
    for scheduler in (ListPrefetchScheduler("ideal-start"),
                      ListPrefetchScheduler("weight"),
                      OnDemandScheduler()):
        result = scheduler.schedule(problem)
        assert optimal.makespan <= result.makespan + 1e-9


@settings(max_examples=40, deadline=None)
@given(params=problem_params, reuse_seed=st.integers(0, 1000))
def test_reuse_never_increases_makespan(params, reuse_seed):
    """Marking more subtasks as reused never makes the schedule longer."""
    import random

    problem = build_problem(params)
    full = ListPrefetchScheduler().schedule(problem)
    rng = random.Random(reuse_seed)
    drhw = list(problem.placed.drhw_names)
    if not drhw:
        return
    reused = frozenset(rng.sample(drhw, rng.randint(1, len(drhw))))
    partial = ListPrefetchScheduler().schedule(problem.with_reused(reused))
    assert partial.makespan <= full.makespan + 1e-9


@settings(max_examples=40, deadline=None)
@given(params=problem_params)
def test_ideal_makespan_is_floor(params):
    problem = build_problem(params)
    result = ListPrefetchScheduler().schedule(problem)
    assert result.makespan >= result.ideal_makespan - 1e-9
    no_loads = ListPrefetchScheduler().schedule(
        problem.with_reused(problem.placed.drhw_names)
    )
    assert no_loads.makespan == pytest.approx(no_loads.ideal_makespan)
