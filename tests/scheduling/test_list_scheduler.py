"""Unit tests for the initial (reconfiguration-free) list scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.subtask import drhw_subtask, isp_subtask
from repro.graphs.taskgraph import TaskGraph, chain_graph
from repro.platform.description import Platform
from repro.scheduling.list_scheduler import (
    ListScheduler,
    ListSchedulerOptions,
    build_initial_schedule,
)


class TestBasicScheduling:
    def test_chain_makespan_equals_critical_path(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        assert placed.makespan == pytest.approx(chain4.critical_path_length())

    def test_diamond_uses_parallelism(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        assert placed.makespan == pytest.approx(28.0)
        # left and right run concurrently on different tiles.
        assert placed.resource_of("left") != placed.resource_of("right")

    def test_single_tile_serializes(self, diamond):
        platform = Platform(tile_count=1)
        placed = build_initial_schedule(diamond, platform)
        assert placed.makespan == pytest.approx(diamond.total_execution_time)

    def test_respects_dependencies(self, benchmark_graphs, platform8):
        for graph in benchmark_graphs:
            placed = build_initial_schedule(graph, platform8)
            for producer, consumer in graph.dependencies():
                assert placed.ideal_start(consumer) >= \
                    placed.ideal_finish(producer) - 1e-9

    def test_no_resource_overlap(self, benchmark_graphs, platform3):
        for graph in benchmark_graphs:
            placed = build_initial_schedule(graph, platform3)
            for resource in placed.resources:
                order = placed.resource_order(resource)
                for earlier, later in zip(order, order[1:]):
                    assert placed.ideal_start(later) >= \
                        placed.ideal_finish(earlier) - 1e-9

    def test_isp_subtasks_go_to_isp(self, mixed_graph, platform8):
        placed = build_initial_schedule(mixed_graph, platform8)
        assert not placed.resource_of("sw_b").is_tile
        assert placed.resource_of("hw_a").is_tile

    def test_isp_needed_but_absent(self, mixed_graph):
        platform = Platform(tile_count=4, isp_count=0)
        with pytest.raises(SchedulingError):
            build_initial_schedule(mixed_graph, platform)

    def test_makespan_never_below_critical_path(self, benchmark_graphs):
        for tiles in (1, 2, 3, 8):
            platform = Platform(tile_count=tiles)
            for graph in benchmark_graphs:
                placed = build_initial_schedule(graph, platform)
                assert placed.makespan >= graph.critical_path_length() - 1e-9

    def test_more_tiles_never_hurt(self, benchmark_graphs):
        for graph in benchmark_graphs:
            previous = None
            for tiles in (1, 2, 4, 8):
                placed = build_initial_schedule(graph, Platform(tile_count=tiles))
                if previous is not None:
                    assert placed.makespan <= previous + 1e-9
                previous = placed.makespan


class TestSpreadingAndPacking:
    def test_spreading_uses_one_tile_per_subtask(self, chain4, platform8):
        options = ListSchedulerOptions(prefer_spreading=True)
        placed = ListScheduler(platform8, options).schedule(chain4)
        used = {placed.resource_of(name) for name in chain4.subtask_names}
        assert len(used) == len(chain4)

    def test_packing_reuses_tiles_for_chains(self, chain4, platform8):
        options = ListSchedulerOptions(prefer_spreading=False)
        placed = ListScheduler(platform8, options).schedule(chain4)
        used = {placed.resource_of(name) for name in chain4.subtask_names}
        assert len(used) == 1

    def test_spreading_does_not_change_makespan(self, benchmark_graphs,
                                                platform8):
        for graph in benchmark_graphs:
            spread = ListScheduler(
                platform8, ListSchedulerOptions(prefer_spreading=True)
            ).schedule(graph)
            packed = ListScheduler(
                platform8, ListSchedulerOptions(prefer_spreading=False)
            ).schedule(graph)
            assert spread.makespan == pytest.approx(packed.makespan)

    def test_deterministic(self, benchmark_graphs, platform8):
        for graph in benchmark_graphs:
            a = build_initial_schedule(graph, platform8)
            b = build_initial_schedule(graph, platform8)
            assert a.placements == b.placements


class TestCommunicationAwareScheduling:
    def test_communication_latency_extends_makespan(self):
        from repro.platform.icn import mesh_icn
        graph = chain_graph("comm", [5.0, 5.0])
        graph_with_data = TaskGraph("comm2")
        graph_with_data.add_subtask(drhw_subtask("s0", 5.0))
        graph_with_data.add_subtask(drhw_subtask("s1", 5.0))
        graph_with_data.add_dependency("s0", "s1", data_size=100.0)
        platform = Platform(tile_count=4, icn=mesh_icn(base_latency=1.0,
                                                       hop_latency=0.5))
        options = ListSchedulerOptions(respect_communication=True,
                                       prefer_spreading=False)
        placed = ListScheduler(platform, options).schedule(graph_with_data)
        # With packing, producer and consumer share a tile: no comm latency.
        assert placed.makespan == pytest.approx(10.0)

    def test_empty_graph_rejected(self, platform8):
        with pytest.raises(Exception):
            build_initial_schedule(TaskGraph("empty"), platform8)
