"""Differential tests: flattened kernel vs the frozen tuple-based kernel.

The flattened integer kernel (``repro.scheduling.replay``) must be
observably indistinguishable from the PR-8 tuple-based kernel retained in
:mod:`tests.scheduling.reference_kernel`: same choice sets with the same
enable times, same push return values (future contributions), same pop
behavior, same makespans/floors along arbitrary push/pop interleavings,
bit-identical :meth:`finish` output — and, although the packed signature
*layout* is entirely different (flat machine ints vs nested name tuples),
the same signature **equality classes**: two states collide under the
packed layout exactly when they collided under the historical one, which
is what keeps every transposition and dominance counter unchanged.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import subtask_weights
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.replay import ReplayState

from .reference_kernel import ReplayState as ReferenceReplayState
from .test_replay_state import assert_bit_identical

#: Instances stay at <= 10 loads (the count bounds the load set from
#: above): deep enough for interesting interleavings, small enough for
#: hundreds of hypothesis examples.
instance_params = st.tuples(
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=0.7),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.0, max_value=8.0),
)


def build_placed(params):
    count, probability, seed, tiles, latency = params
    graph = random_dag("flatref", count=count, edge_probability=probability,
                       time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
                       seed=seed)
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return placed, latency


def paired_states(placed, latency, *, release=0.0, with_weights=False):
    weights = subtask_weights(placed.graph) if with_weights else None
    new = ReplayState.start(placed, latency, placed.drhw_names,
                            release_time=release, weights=weights)
    old = ReferenceReplayState.start(placed, latency, placed.drhw_names,
                                     release_time=release, weights=weights)
    return new, old


def assert_observably_equal(new, old):
    """Every public observable of the two kernels must coincide.

    ``choices()`` may enumerate in a different order (resource order vs
    set order) — the *set* of (name, enable) pairs is the contract.
    """
    assert new.pending_loads == old.pending_loads
    assert new.controller_time == old.controller_time
    assert new.makespan == old.makespan
    assert new.critical_floor == old.critical_floor
    assert new.undo_depth == old.undo_depth
    assert new.load_sequence == old.load_sequence
    assert new.is_complete == old.is_complete
    assert sorted(new.choices()) == sorted(old.choices())
    assert sorted(new.issuable()) == sorted(old.issuable())


class TestLockstepInterleavings:
    @settings(max_examples=80, deadline=None)
    @given(params=instance_params, walk_seed=st.integers(0, 10_000),
           with_weights=st.booleans(),
           release=st.floats(min_value=0.0, max_value=30.0))
    def test_random_push_pop_walk_is_indistinguishable(
            self, params, walk_seed, with_weights, release):
        """Arbitrary push/pop interleavings observe identical kernels."""
        placed, latency = build_placed(params)
        new, old = paired_states(placed, latency, release=release,
                                 with_weights=with_weights)
        rng = random.Random(walk_seed)
        new_signatures = [new.signature()]
        old_signatures = [old.signature()]
        for _ in range(60):
            assert_observably_equal(new, old)
            choices = sorted(new.choices())
            can_push = bool(choices)
            can_pop = new.undo_depth > 0
            if not can_push and not can_pop:
                break
            if can_push and (not can_pop or rng.random() < 0.65):
                name, enable = rng.choice(choices)
                assert new.push_choice(name, enable) \
                    == old.push_choice(name, enable)
            else:
                assert new.pop() == old.pop()
            new_signatures.append(new.signature())
            old_signatures.append(old.signature())
        assert_observably_equal(new, old)
        # Same equality classes despite entirely different layouts: state i
        # collides with state j under the packed signature exactly when it
        # does under the historical nested-name signature.
        for i in range(len(new_signatures)):
            for j in range(i + 1, len(new_signatures)):
                assert (new_signatures[i] == new_signatures[j]) \
                    == (old_signatures[i] == old_signatures[j])

    @settings(max_examples=60, deadline=None)
    @given(params=instance_params, order_seed=st.integers(0, 10_000))
    def test_pushed_to_completion_finish_is_bit_identical(
            self, params, order_seed):
        """A full random dispatch sequence materializes identically."""
        placed, latency = build_placed(params)
        new, old = paired_states(placed, latency)
        rng = random.Random(order_seed)
        while not new.is_complete:
            choices = sorted(new.choices())
            assert choices and sorted(old.choices()) == choices
            name, enable = rng.choice(choices)
            new.push_choice(name, enable)
            old.push_choice(name, enable)
        assert old.is_complete
        assert_bit_identical(new.finish(), old.finish())

    @settings(max_examples=40, deadline=None)
    @given(params=instance_params, walk_seed=st.integers(0, 10_000))
    def test_unwound_state_replays_like_a_fresh_one(self, params, walk_seed):
        """Push/pop churn followed by completion equals a fresh replay."""
        placed, latency = build_placed(params)
        new, old = paired_states(placed, latency)
        rng = random.Random(walk_seed)
        for _ in range(30):
            choices = sorted(new.choices())
            if choices and (new.undo_depth == 0 or rng.random() < 0.5):
                name, enable = rng.choice(choices)
                new.push_choice(name, enable)
                old.push_choice(name, enable)
            elif new.undo_depth:
                new.pop()
                old.pop()
        while new.undo_depth:
            new.pop()
            old.pop()
        # The fully unwound states must still agree with a *fresh* pair
        # (exact-undo invariant), then complete identically.
        fresh_new, fresh_old = paired_states(placed, latency)
        assert new.signature() == fresh_new.signature()
        assert old.signature() == fresh_old.signature()
        while not new.is_complete:
            name, enable = min(sorted(new.choices()))
            new.push_choice(name, enable)
            old.push_choice(name, enable)
        assert_bit_identical(new.finish(), old.finish())
