"""Differential fuzz harness for the exact branch-and-bound search.

Three independent engines answer every random instance:

* the **production search** (:class:`BranchAndBoundScheduler`): undo-log
  dispatch-tree walk with lower-bound pruning and the transposition table
  that memoizes best completion subtrees;
* a **PR-2-style reference search** (implemented here against the public
  replay-kernel API): clone-per-``extend`` depth-first walk whose signature
  table only *prunes duplicates* — the engine this PR replaced;
* **brute force**: full enumeration of load priority permutations through
  the monolithic replay — the seed engine's semantics, feasible up to the
  8-load instances this harness draws.

All three must agree on the optimal makespan, and each returned dispatch
order must be *self-consistent*: replaying it as a priority order through
the greedy dispatcher reproduces the claimed schedule bit for bit.  (The
engines may return *different* optimal orders on ties — their exploration
orders legitimately break ties differently — so schedule identity is
asserted per engine against the dispatcher, and optimality across engines
via the makespan.  Within the production engine, warm-vs-cold tie
*identity* is pinned separately in ``test_scheduler_pool.py``.)

Hypothesis runs derandomized (see ``tests/conftest.py``), so the corpus is
stable run to run.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.prefetch_bb import BranchAndBoundScheduler
from repro.scheduling.prefetch_list import ListPrefetchScheduler
from repro.scheduling.replay import ReplayState
from repro.scheduling.schedule import TIME_EPSILON

from .test_replay_state import assert_bit_identical

LATENCY = 4.0


# ---------------------------------------------------------------------- #
# Reference: the PR-2 search (dominance prunes duplicates, no memoization)
# ---------------------------------------------------------------------- #
def pr2_reference_search(problem: PrefetchProblem
                         ) -> Tuple[Tuple[str, ...], float]:
    """Clone-based dispatch-tree DFS with a duplicate-pruning table.

    Mirrors the PR-2 engine's semantics through the public kernel API:
    branch over the horizon-enabled choices, carry ``extend_choice``
    snapshots down the tree, and keep per-signature only the best realized
    makespan — pruning revisits, never reusing subtree results.  (No lower
    bound: on <= 8-load instances the tree is small enough, and leaving the
    bound out makes the reference independent of the production bound
    code.)
    """
    placed = problem.placed
    loads = list(problem.loads)
    seed_order = ListPrefetchScheduler("ideal-start").load_order(problem)
    seed_timed = replay_schedule(
        placed, problem.reconfiguration_latency, seed_order,
        priority_order=seed_order, release_time=problem.release_time,
        controller_available=problem.controller_available,
    )
    best_makespan = seed_timed.makespan
    best_order: Tuple[str, ...] = seed_order
    if not loads:
        return best_order, best_makespan
    seen: Dict[Tuple, float] = {}

    stack: List[ReplayState] = [ReplayState.start(
        placed, problem.reconfiguration_latency, loads,
        release_time=problem.release_time,
        controller_available=problem.controller_available,
    )]
    while stack:
        state = stack.pop()
        if not state.pending_loads:
            if state.makespan < best_makespan - TIME_EPSILON:
                best_makespan = state.makespan
                best_order = state.load_sequence
            continue
        signature = state.signature()
        previous = seen.get(signature)
        if previous is not None and state.makespan >= previous - TIME_EPSILON:
            continue
        seen[signature] = state.makespan
        for name, enable in state.choices():
            stack.append(state.extend_choice(name, enable))
    return best_order, best_makespan


def brute_force_optimum(problem: PrefetchProblem) -> float:
    """Minimum makespan over *all* load priority permutations."""
    placed = problem.placed
    loads = list(problem.loads)
    if not loads:
        return replay_schedule(
            placed, problem.reconfiguration_latency, loads,
            release_time=problem.release_time,
            controller_available=problem.controller_available,
        ).makespan
    return min(
        replay_schedule(
            placed, problem.reconfiguration_latency, order,
            priority_order=order, release_time=problem.release_time,
            controller_available=problem.controller_available,
        ).makespan
        for order in permutations(loads)
    )


#: Quick-loop instances: up to 6 loads (6! = 720 permutations), so the
#: brute-force oracle stays millisecond-cheap per example.
instance_params = st.tuples(
    st.integers(min_value=1, max_value=6),       # subtask count
    st.floats(min_value=0.0, max_value=0.6),     # edge probability
    st.integers(min_value=0, max_value=4000),    # graph seed
    st.integers(min_value=1, max_value=8),       # tile count
)

#: Slow-sweep instances: the full 8-load frontier the harness pins
#: (8! = 40320 permutations per example — slow-marked).
wide_instance_params = st.tuples(
    st.integers(min_value=7, max_value=8),
    st.floats(min_value=0.0, max_value=0.6),
    st.integers(min_value=0, max_value=4000),
    st.integers(min_value=1, max_value=8),
)


def build_problem(params) -> PrefetchProblem:
    count, probability, seed, tiles = params
    graph = random_dag(
        "differential", count=count, edge_probability=probability,
        time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
        seed=seed,
    )
    placed = build_initial_schedule(graph, Platform(tile_count=tiles))
    return PrefetchProblem(placed, LATENCY)


class TestExactDifferential:
    @settings(max_examples=30, deadline=None)
    @given(params=instance_params)
    def test_three_engines_agree_on_the_optimum(self, params):
        """TT search == PR-2 reference == brute force, every instance."""
        problem = build_problem(params)
        result = BranchAndBoundScheduler().schedule(problem)
        _, reference_makespan = pr2_reference_search(problem)
        brute = brute_force_optimum(problem)
        assert result.makespan == pytest.approx(brute, abs=1e-9)
        assert reference_makespan == pytest.approx(brute, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(params=instance_params)
    def test_returned_schedule_is_the_dispatch_of_its_order(self, params):
        """The claimed schedule is bit-identical to replaying its order."""
        problem = build_problem(params)
        result = BranchAndBoundScheduler().schedule(problem)
        replayed = replay_schedule(
            problem.placed, LATENCY, result.load_order,
            priority_order=result.load_order,
            release_time=problem.release_time,
            controller_available=problem.controller_available,
        )
        assert_bit_identical(result.timed, replayed)

    @settings(max_examples=20, deadline=None)
    @given(params=instance_params,
           release=st.floats(min_value=0.0, max_value=40.0),
           controller_offset=st.floats(min_value=0.0, max_value=25.0))
    def test_agreement_holds_under_release_offsets(self, params, release,
                                                   controller_offset):
        """Absolute release/controller times do not break the agreement."""
        problem = build_problem(params).with_release(
            release, release + controller_offset
        )
        result = BranchAndBoundScheduler().schedule(problem)
        _, reference_makespan = pr2_reference_search(problem)
        brute = brute_force_optimum(problem)
        # PrefetchResult.makespan is release-relative (``timed.span``); the
        # oracles report absolute completion times — compare apples to apples.
        assert result.timed.makespan == pytest.approx(brute, abs=1e-9)
        assert reference_makespan == pytest.approx(brute, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(params=instance_params, limit=st.integers(0, 12))
    def test_lru_capped_table_stays_optimal(self, params, limit):
        """Any LRU cap degrades memoization, never optimality."""
        problem = build_problem(params)
        capped = BranchAndBoundScheduler(table_limit=limit).schedule(problem)
        brute = brute_force_optimum(problem)
        assert capped.makespan == pytest.approx(brute, abs=1e-9)

    @pytest.mark.slow
    @settings(max_examples=12, deadline=None)
    @given(params=wide_instance_params)
    def test_agreement_at_the_eight_load_frontier(self, params):
        """7–8-load instances: the limit of enumerable brute force."""
        problem = build_problem(params)
        result = BranchAndBoundScheduler().schedule(problem)
        _, reference_makespan = pr2_reference_search(problem)
        brute = brute_force_optimum(problem)
        assert result.makespan == pytest.approx(brute, abs=1e-9)
        assert reference_makespan == pytest.approx(brute, abs=1e-9)
        replayed = replay_schedule(
            problem.placed, LATENCY, result.load_order,
            priority_order=result.load_order,
        )
        assert_bit_identical(result.timed, replayed)


#: Fixed pins at the raised :data:`DEFAULT_EXACT_LIMIT` frontier (16–17
#: loads).  Brute force is unenumerable here (17! permutations), so the
#: independent oracle is the PR-2 reference search — exhaustive over the
#: dispatch tree with duplicate pruning only, sharing neither the bound
#: nor the memoization code with the production engine.  Instances are
#: pinned (not hypothesis-drawn) because the clone-based reference
#: explodes on wide many-tile graphs; these seeds were picked to span
#: easy to ~20k-node searches while the reference stays in seconds.
FRONTIER_PINS = [
    (16, 0.1, 3, 5),
    (16, 0.15, 23, 4),
    (17, 0.1, 4, 4),
    (17, 0.25, 21, 5),
    (17, 0.15, 8, 5),
]


@pytest.mark.slow
class TestSeventeenLoadFrontier:
    @pytest.mark.parametrize("params", FRONTIER_PINS,
                             ids=lambda p: f"{p[0]}loads-s{p[2]}@{p[3]}t")
    def test_production_matches_reference_at_the_new_frontier(self, params):
        """16–17-load optimality, differentially pinned."""
        problem = build_problem(params)
        assert problem.load_count == params[0]
        result = BranchAndBoundScheduler().schedule(problem)
        _, reference_makespan = pr2_reference_search(problem)
        assert result.makespan == pytest.approx(reference_makespan, abs=1e-9)
        replayed = replay_schedule(
            problem.placed, LATENCY, result.load_order,
            priority_order=result.load_order,
        )
        assert_bit_identical(result.timed, replayed)

    def test_default_gate_routes_seventeen_loads_to_exact_search(self):
        """OptimalPrefetchScheduler's default now covers the 17-load pins."""
        from repro.scheduling.prefetch_bb import (
            DEFAULT_EXACT_LIMIT,
            OptimalPrefetchScheduler,
        )
        problem = build_problem(FRONTIER_PINS[2])
        assert problem.load_count == 17 <= DEFAULT_EXACT_LIMIT
        routed = OptimalPrefetchScheduler().schedule(problem)
        exact = BranchAndBoundScheduler().schedule(problem)
        assert routed.load_order == exact.load_order
        assert_bit_identical(routed.timed, exact.timed)
