"""Warm scheduler pool: bit-identical results, observable reuse.

The :class:`~repro.scheduling.pool.SchedulerPool` promise is twofold:

* **Exactness across calls** — a pooled (warm-table) engine returns
  schedules *bit-identical* to a fresh cold engine for every problem, no
  matter how problems over different placed schedules, latencies, reused
  sets and release times are interleaved between the calls.  This is the
  cross-call extension of PR 3's transposition-safety argument (see
  "Cross-call reuse" in :mod:`repro.scheduling.prefetch_bb`): warm
  entries only ever *prune* subtrees that provably cannot strictly beat
  the current incumbent, so warm and cold searches realize the same
  sequence of strict improvements at the same leaves.
* **Observable reuse** — repeat solves report non-zero ``tt_warm_hits``,
  the pool's routing counters add up, and the aggregated ``total_stats``
  is exactly the merge of the per-call stats.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.critical import CriticalSubtaskSelector
from repro.graphs.generators import ExecutionTimeModel, random_dag
from repro.platform.description import Platform
from repro.scheduling.base import PrefetchProblem, SchedulerStats
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.scheduling.pool import (
    SchedulerPool,
    process_scheduler_pool,
    reset_process_scheduler_pool,
)
from repro.scheduling.prefetch_bb import (
    BranchAndBoundScheduler,
    OptimalPrefetchScheduler,
)

from .test_replay_state import assert_bit_identical

LATENCY = 4.0


def make_placed(count: int, probability: float, seed: int, tiles: int):
    graph = random_dag(
        "pooled", count=count, edge_probability=probability,
        time_model=ExecutionTimeModel(minimum=0.5, maximum=20.0),
        seed=seed,
    )
    return build_initial_schedule(
        graph, Platform(tile_count=tiles, reconfiguration_latency=LATENCY)
    )


#: One interleaving step: (graph seed, edge probability, tile count,
#: latency, reused-prefix length, release time).  Few distinct values per
#: axis on purpose: repeats are what make warm tables (and their hazards)
#: reachable.
step_params = st.tuples(
    st.integers(min_value=0, max_value=2),            # graph seed
    st.sampled_from([0.1, 0.4]),                      # edge probability
    st.integers(min_value=2, max_value=4),            # tile count
    st.sampled_from([2.0, 4.0]),                      # latency
    st.integers(min_value=0, max_value=3),            # reused prefix
    st.sampled_from([0.0, 7.5]),                      # release time
)


class TestWarmPoolBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(steps=st.lists(step_params, min_size=2, max_size=10))
    def test_interleaved_problems_match_cold_engines(self, steps):
        """Warm pool == fresh cold engine, for every interleaved problem.

        Problems vary graph, tile count, latency, reused set and release
        time; the pool routes them onto shared engines whose tables stay
        warm between revisits of the same (placed, latency) core.  Every
        single answer must be bit-identical to a cold engine's, and the
        merged pool stats must equal the merge of the per-call stats.
        """
        pool = SchedulerPool()
        placed_cache = {}
        expected_stats = SchedulerStats()
        for seed, probability, tiles, latency, reuse_len, release in steps:
            key = (seed, probability, tiles)
            placed = placed_cache.get(key)
            if placed is None:
                placed = make_placed(8, probability, seed, tiles)
                placed_cache[key] = placed
            reused = sorted(placed.drhw_names)[:reuse_len]
            problem = PrefetchProblem(
                placed, latency, reused=frozenset(reused),
                release_time=release,
            )
            warm = pool.schedule(problem)
            cold = BranchAndBoundScheduler().schedule(problem)
            assert warm.load_order == cold.load_order
            assert_bit_identical(warm.timed, cold.timed)
            expected_stats = expected_stats.merged(warm.stats)
        assert pool.total_stats == expected_stats
        assert pool.pool_hits + pool.pool_misses == len(steps)
        assert pool.pool_misses == pool.engine_count

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5))
    def test_repeat_solves_hit_warm_entries(self, seed):
        """Re-solving the same problem is answered from the warm table."""
        placed = make_placed(9, 0.15, seed, 4)
        problem = PrefetchProblem(placed, LATENCY)
        pool = SchedulerPool()
        first = pool.schedule(problem)
        second = pool.schedule(problem)
        assert second.load_order == first.load_order
        assert_bit_identical(second.timed, first.timed)
        if first.stats.operations > 1:
            # Any non-trivial search leaves a warm root certificate behind.
            assert second.stats.tt_warm_hits > 0
            assert second.stats.operations < first.stats.operations
        assert first.stats.tt_warm_hits == 0  # first call is always cold
        # The warm call inherits the first call's live entries: its peak
        # reports the retained table, not just its own (few) inserts.
        assert second.stats.tt_peak_size >= first.stats.tt_peak_size


class TestPoolBookkeeping:
    def test_engine_reused_per_core_and_keyed_by_latency(self):
        pool = SchedulerPool()
        placed = make_placed(6, 0.3, 1, 3)
        engine_a = pool.engine_for(placed, 4.0)
        engine_b = pool.engine_for(placed, 4.0)
        engine_c = pool.engine_for(placed, 2.0)
        assert engine_a is engine_b
        assert engine_a is not engine_c
        assert (pool.pool_hits, pool.pool_misses) == (1, 2)

    def test_explicit_none_config_overrides_pool_defaults(self):
        """``None`` keeps its engine-level meaning; omission inherits.

        An :class:`OptimalPrefetchScheduler` gates problem sizes itself, so
        its pooled engines must never re-gate — even when the pool was
        configured with a tighter ``exact_limit`` — and an explicit
        ``table_limit=None`` (unbounded) must not be silently replaced by
        the pool's bounded default.
        """
        placed = make_placed(12, 0.2, 0, 3)
        problem = PrefetchProblem(placed, LATENCY)
        pool = SchedulerPool(exact_limit=5)
        scheduler = OptimalPrefetchScheduler(exact_limit=15,
                                             table_limit=None, pool=pool)
        assert problem.load_count > 5
        result = scheduler.schedule(problem)  # must not re-gate at 5
        cold = BranchAndBoundScheduler().schedule(problem)
        assert result.load_order == cold.load_order
        engine = pool.engine_for(placed, LATENCY, exact_limit=None,
                                 table_limit=None)
        assert engine.exact_limit is None
        assert engine.table_limit is None
        inherited = pool.engine_for(placed, LATENCY)
        assert inherited is not engine
        assert inherited.exact_limit == 5

    def test_engine_invalidates_on_context_change(self):
        """One engine fed different contexts stays exact (fresh tables)."""
        placed = make_placed(8, 0.2, 2, 3)
        other = make_placed(8, 0.2, 3, 3)
        engine = BranchAndBoundScheduler(persistent_table=True)
        for problem in (
            PrefetchProblem(placed, LATENCY),
            PrefetchProblem(placed, 2.0),               # latency change
            PrefetchProblem(placed, 2.0, release_time=5.0),  # release change
            PrefetchProblem(other, 2.0, release_time=5.0),   # placed change
        ):
            warm = engine.schedule(problem)
            cold = BranchAndBoundScheduler().schedule(problem)
            assert_bit_identical(warm.timed, cold.timed)
            # Every context component changed => table discarded => no
            # cross-call answers possible.
            assert warm.stats.tt_warm_hits == 0

    def test_explicit_invalidate_drops_warmth(self):
        placed = make_placed(9, 0.15, 0, 4)
        problem = PrefetchProblem(placed, LATENCY)
        pool = SchedulerPool()
        pool.schedule(problem)
        engine = pool.engine_for(placed, LATENCY)
        engine.invalidate()
        again = pool.run(engine, problem)
        assert again.stats.tt_warm_hits == 0

    def test_lru_bounds_live_engines(self):
        pool = SchedulerPool(max_engines=2)
        schedules = [make_placed(5, 0.3, seed, 2) for seed in range(4)]
        for placed in schedules:
            pool.engine_for(placed, LATENCY)
        assert pool.engine_count == 2
        assert pool.engines_evicted == 2

    def test_dead_placed_schedule_releases_its_engine(self):
        pool = SchedulerPool()
        placed = make_placed(5, 0.3, 0, 2)
        pool.engine_for(placed, LATENCY)
        assert pool.engine_count == 1
        del placed
        gc.collect()
        assert pool.engine_count == 0

    def test_process_pool_is_shared_and_resettable(self):
        reset_process_scheduler_pool()
        pool = process_scheduler_pool()
        assert process_scheduler_pool() is pool
        reset_process_scheduler_pool()
        assert process_scheduler_pool() is not pool

    def test_pickles_as_an_empty_pool(self):
        import pickle

        pool = SchedulerPool()
        placed = make_placed(5, 0.3, 0, 2)
        pool.schedule(PrefetchProblem(placed, LATENCY))
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.engine_count == 0
        assert clone.max_engines == pool.max_engines
        # Routing counters survive; only the engines (weakrefs) are shed.
        assert clone.pool_misses == pool.pool_misses


class TestWithReusedExploration:
    @pytest.mark.parametrize("count,probability,tiles,seed", [
        (10, 0.1, 5, 0),
        (12, 0.3, 3, 2),
        (8, 0.2, 4, 1),
    ])
    def test_critical_selection_matches_cold(self, count, probability,
                                             tiles, seed):
        """The with_reused variant loop is bit-identical warm vs cold."""
        placed = make_placed(count, probability, seed, tiles)
        cold = CriticalSubtaskSelector(
            scheduler=OptimalPrefetchScheduler()
        ).select(placed, LATENCY)
        pool = SchedulerPool()
        warm = CriticalSubtaskSelector(
            scheduler=OptimalPrefetchScheduler(pool=pool)
        ).select(placed, LATENCY)
        assert warm.critical == cold.critical
        assert warm.load_order == cold.load_order
        assert warm.schedule.load_order == cold.schedule.load_order
        assert_bit_identical(warm.schedule.timed, cold.schedule.timed)
        assert [step.overhead for step in warm.steps] \
            == [step.overhead for step in cold.steps]
        # Every variant of one placed schedule shares a single engine.
        assert pool.pool_misses == 1
        assert pool.pool_hits == warm.iterations - 1

    def test_optimal_scheduler_reports_pool_stats_per_call(self):
        """Per-call stats stay per-call even on a shared engine."""
        placed = make_placed(9, 0.15, 4, 4)
        problem = PrefetchProblem(placed, LATENCY)
        pool = SchedulerPool()
        scheduler = OptimalPrefetchScheduler(pool=pool)
        first = scheduler.schedule(problem)
        second = scheduler.schedule(problem)
        merged = first.stats.merged(second.stats)
        assert pool.total_stats == merged
        assert pool.total_stats.tt_warm_hits == second.stats.tt_warm_hits
