"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure6", "figure7", "scalability",
                        "hide-rate", "ablation", "demo"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_figure6_options(self):
        args = build_parser().parse_args(
            ["figure6", "--iterations", "50", "--tiles", "8", "10"]
        )
        assert args.iterations == 50
        assert args.tiles == [8, 10]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "jpeg_decoder" in output
        assert "paper overhead" in output

    def test_demo(self, capsys):
        assert main(["demo", "--task", "jpeg_decoder"]) == 0
        output = capsys.readouterr().out
        assert "without prefetch" in output
        assert "hybrid heuristic" in output
        assert "reconfig" in output

    def test_hide_rate(self, capsys):
        assert main(["hide-rate"]) == 0
        assert "hidden" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability", "--sizes", "5", "10"]) == 0
        assert "run-time heuristic" in capsys.readouterr().out

    def test_ablation_pick_metric(self, capsys):
        assert main(["ablation", "--study", "pick-metric"]) == 0
        assert "max-weight" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        assert main(["figure6", "--iterations", "5", "--tiles", "8"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7_tiny(self, capsys):
        assert main(["figure7", "--iterations", "5", "--tiles", "6"]) == 0
        assert "Figure 7" in capsys.readouterr().out
