"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure6", "figure7", "scalability",
                        "hide-rate", "ablation", "sweep", "robustness",
                        "demo"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_figure6_options(self):
        args = build_parser().parse_args(
            ["figure6", "--iterations", "50", "--tiles", "8", "10"]
        )
        assert args.iterations == 50
        assert args.tiles == [8, 10]

    def test_tt_cache_flag_defaults_on_and_negates(self):
        parser = build_parser()
        assert parser.parse_args(["figure6"]).tt_cache is True
        assert parser.parse_args(["figure6", "--no-tt-cache"]).tt_cache \
            is False
        assert parser.parse_args(["sweep", "--tt-cache"]).tt_cache is True

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--workloads", "multimedia", "--approaches", "hybrid",
             "run-time", "--tiles", "4", "8", "--seeds", "1", "2",
             "--distributed", "--worker-id", "w1", "--claim-ttl", "30"]
        )
        assert args.approaches == ["hybrid", "run-time"]
        assert args.tiles == [4, 8]
        assert args.seeds == [1, 2]
        assert args.distributed is True
        assert args.worker_id == "w1"
        assert args.claim_ttl == 30.0

    def test_sweep_noise_options(self):
        args = build_parser().parse_args(
            ["sweep", "--fault-rate", "0.05", "--latency-sigma", "0.3",
             "--latency-jitter", "1.5", "--execution-sigma", "0.2",
             "--load-failure-rate", "0.4", "--max-retries", "5"]
        )
        assert args.fault_rate == 0.05
        assert args.latency_sigma == 0.3
        assert args.latency_jitter == 1.5
        assert args.execution_sigma == 0.2
        assert args.load_failure_rate == 0.4
        assert args.max_retries == 5

    def test_robustness_options(self):
        args = build_parser().parse_args(
            ["robustness", "--workload", "synthetic", "--tiles", "6",
             "--levels", "0", "0.3", "--approaches", "design-time",
             "adaptive", "--seeds", "1", "2", "--iterations", "10"]
        )
        assert args.workload == "synthetic"
        assert args.tiles == 6
        assert args.levels == [0.0, 0.3]
        assert args.approaches == ["design-time", "adaptive"]
        assert args.seeds == [1, 2]
        assert args.iterations == 10


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "jpeg_decoder" in output
        assert "paper overhead" in output

    def test_demo(self, capsys):
        assert main(["demo", "--task", "jpeg_decoder"]) == 0
        output = capsys.readouterr().out
        assert "without prefetch" in output
        assert "hybrid heuristic" in output
        assert "reconfig" in output

    def test_hide_rate(self, capsys):
        assert main(["hide-rate"]) == 0
        assert "hidden" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability", "--sizes", "5", "10"]) == 0
        assert "run-time heuristic" in capsys.readouterr().out

    def test_ablation_pick_metric(self, capsys):
        assert main(["ablation", "--study", "pick-metric"]) == 0
        assert "max-weight" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        assert main(["figure6", "--iterations", "5", "--tiles", "8"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7_tiny(self, capsys):
        assert main(["figure7", "--iterations", "5", "--tiles", "6"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_sweep_ensemble_tiny(self, capsys):
        assert main(["sweep", "--approaches", "run-time", "--tiles", "4",
                     "--seeds", "1", "2", "--iterations", "5"]) == 0
        output = capsys.readouterr().out
        assert "Seed ensemble" in output
        assert "±" in output
        assert "points: 2 (computed 2, cached 0)" in output

    def test_sweep_distributed_tiny(self, capsys, tmp_path):
        # hybrid (not run-time): only approaches with an exact design
        # engine produce transposition tables worth persisting.
        argv = ["sweep", "--approaches", "hybrid", "--tiles", "4",
                "--seeds", "1", "--iterations", "5", "--distributed",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "computed 1" in capsys.readouterr().out
        assert list((tmp_path / "claims").glob("*.claim"))
        assert list((tmp_path / "ttables").glob("tt-*.json"))
        # A second worker arriving later is served entirely by the cache.
        assert main(argv) == 0
        assert "cached 1" in capsys.readouterr().out

    def test_sweep_with_noise_labels_points(self, capsys):
        assert main(["sweep", "--approaches", "run-time", "--tiles", "4",
                     "--seeds", "1", "2", "--iterations", "5",
                     "--load-failure-rate", "0.3"]) == 0
        assert "noise[" in capsys.readouterr().out

    def test_robustness_tiny(self, capsys):
        assert main(["robustness", "--workload", "synthetic", "--tiles", "6",
                     "--levels", "0", "0.3", "--approaches", "design-time",
                     "adaptive", "--seeds", "1", "2",
                     "--iterations", "8"]) == 0
        output = capsys.readouterr().out
        assert "overhead (%)" in output
        assert "design-time" in output and "adaptive" in output
        assert "±" in output

    def test_sweep_distributed_requires_cache_dir(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="cache-dir"):
            main(["sweep", "--distributed", "--iterations", "5",
                  "--tiles", "4", "--approaches", "run-time"])


class TestCacheGcCommand:
    def test_parser_accepts_byte_suffixes(self):
        parser = build_parser()
        args = parser.parse_args(
            ["cache", "gc", "--cache-dir", "/tmp/x", "--max-bytes", "2M"]
        )
        assert args.command == "cache"
        assert args.cache_command == "gc"
        assert args.max_bytes == 2 * 1024 * 1024
        assert parser.parse_args(
            ["cache", "gc", "--cache-dir", "/tmp/x", "--max-bytes", "512"]
        ).max_bytes == 512
        assert parser.parse_args(
            ["cache", "gc", "--cache-dir", "/tmp/x", "--max-bytes", "1g"]
        ).max_bytes == 1024 ** 3

    def test_parser_rejects_bad_sizes(self):
        parser = build_parser()
        for bad in ("twelve", "-5", "2T", ""):
            with pytest.raises(SystemExit):
                parser.parse_args(["cache", "gc", "--cache-dir", "/tmp/x",
                                   "--max-bytes", bad])

    def test_cache_dir_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "gc"])

    def test_gc_end_to_end(self, capsys, tmp_path):
        # Populate a real cache through a tiny sweep, then shrink it.
        assert main(["sweep", "--approaches", "hybrid", "--tiles", "4",
                     "--seeds", "1", "--iterations", "5",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--dry-run"]) == 0
        dry = capsys.readouterr().out
        assert "would free" in dry
        assert "results" in dry
        before = sorted(tmp_path.rglob("*.json"))
        assert before  # dry run deleted nothing
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "retained: 0 bytes" in out
        assert not list(tmp_path.glob("*.json"))
        # A warm rerun after total eviction recomputes bit-identically.
        assert main(["sweep", "--approaches", "hybrid", "--tiles", "4",
                     "--seeds", "1", "--iterations", "5",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "computed 1" in capsys.readouterr().out


class TestTraceCommand:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "generate"])
        assert args.command == "trace"
        assert args.trace_command == "generate"
        assert args.records == 1000
        assert args.universe == 64
        assert args.out == "-"
        args = parser.parse_args(["trace", "run", "--service",
                                  "127.0.0.1:8642", "--min-warm-rate",
                                  "0.3"])
        assert args.trace_command == "run"
        assert args.service == "127.0.0.1:8642"
        assert args.min_warm_rate == 0.3
        assert args.tt_cache is True

    def test_subcommand_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_generate_to_stdout_is_deterministic(self, capsys):
        argv = ["trace", "generate", "--records", "12", "--universe", "6",
                "--gen-seed", "3", "--tenants", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert first.count("\n") == 12
        assert '"task":' in first and '"tenant":' in first

    def test_generate_to_file_then_run(self, capsys, tmp_path):
        log = tmp_path / "trace.jsonl"
        assert main(["trace", "generate", "--records", "15", "--universe",
                     "4", "--gen-seed", "5", "--out", str(log)]) == 0
        assert "wrote 15 records" in capsys.readouterr().out
        assert main(["trace", "run", "--log", str(log), "--iterations",
                     "2", "--tiles", "4", "--subtasks", "4"]) == 0
        output = capsys.readouterr().out
        assert "records" in output
        assert "warm arrivals" in output

    def test_run_synthesizes_and_gates_on_warm_rate(self, capsys):
        argv = ["trace", "run", "--records", "15", "--universe", "4",
                "--gen-seed", "5", "--iterations", "2", "--tiles", "4",
                "--subtasks", "4"]
        assert main(argv + ["--min-warm-rate", "0.1"]) == 0
        assert ">= 0.100" in capsys.readouterr().out
        assert main(argv + ["--min-warm-rate", "0.99"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_rejects_malformed_service_endpoint(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            main(["trace", "run", "--records", "5", "--universe", "2",
                  "--service", "nonsense"])
