"""Unit tests for tasks, scenarios and task sets."""

import random

import pytest

from repro.errors import ScenarioError
from repro.graphs.taskgraph import chain_graph
from repro.tcm.scenario import (
    DynamicTask,
    Scenario,
    TaskInstance,
    TaskSet,
    single_scenario_task,
)


def _scenario(name, times, probability=1.0):
    return Scenario(name=name, graph=chain_graph(f"g_{name}", times),
                    probability=probability)


class TestScenario:
    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(name="", graph=chain_graph("g", [1.0]))

    def test_negative_probability_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario("s", [1.0], probability=-0.5)


class TestDynamicTask:
    def test_requires_scenarios(self):
        with pytest.raises(ScenarioError):
            DynamicTask("t", [])

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ScenarioError):
            DynamicTask("t", [_scenario("a", [1.0]), _scenario("a", [2.0])])

    def test_zero_total_probability_rejected(self):
        with pytest.raises(ScenarioError):
            DynamicTask("t", [_scenario("a", [1.0], probability=0.0)])

    def test_lookup(self):
        task = DynamicTask("t", [_scenario("a", [1.0]), _scenario("b", [2.0])])
        assert task.scenario("a").name == "a"
        assert task.scenario_names == ["a", "b"]
        assert len(task) == 2
        with pytest.raises(ScenarioError):
            task.scenario("c")

    def test_draw_scenario_follows_probabilities(self):
        task = DynamicTask("t", [
            _scenario("rare", [1.0], probability=0.05),
            _scenario("common", [2.0], probability=0.95),
        ])
        rng = random.Random(3)
        draws = [task.draw_scenario(rng).name for _ in range(400)]
        assert draws.count("common") > draws.count("rare")

    def test_draw_deterministic_given_seed(self):
        task = DynamicTask("t", [_scenario("a", [1.0]), _scenario("b", [2.0])])
        first = [task.draw_scenario(random.Random(9)).name for _ in range(5)]
        second = [task.draw_scenario(random.Random(9)).name for _ in range(5)]
        assert first == second

    def test_average_ideal_time(self):
        task = DynamicTask("t", [
            _scenario("short", [10.0], probability=0.5),
            _scenario("long", [30.0], probability=0.5),
        ])
        assert task.average_ideal_time() == pytest.approx(20.0)

    def test_configurations_deduplicated(self):
        graph_a = chain_graph("a", [1.0, 2.0])
        graph_b = chain_graph("b", [3.0, 4.0])
        task = DynamicTask("t", [Scenario("a", graph_a), Scenario("b", graph_b)])
        assert set(task.configurations) == {"s0", "s1"}

    def test_single_scenario_task(self):
        task = single_scenario_task("solo", chain_graph("g", [1.0]))
        assert task.scenario_names == ["default"]


class TestTaskSet:
    def test_basic(self):
        task_set = TaskSet("app", [single_scenario_task("a", chain_graph("ga", [1.0])),
                                   single_scenario_task("b", chain_graph("gb", [2.0]))])
        assert len(task_set) == 2
        assert task_set.task_names == ["a", "b"]
        assert task_set.scenario_count == 2
        with pytest.raises(ScenarioError):
            task_set.task("c")

    def test_duplicate_task_rejected(self):
        task = single_scenario_task("a", chain_graph("g", [1.0]))
        with pytest.raises(ScenarioError):
            TaskSet("app", [task, task])

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            TaskSet("app", [])

    def test_instances_from_assignment(self):
        task_set = TaskSet("app", [
            DynamicTask("a", [_scenario("x", [1.0]), _scenario("y", [2.0])]),
        ])
        instances = task_set.instances({"a": "y"})
        assert len(instances) == 1
        assert instances[0].scenario_name == "y"
        assert instances[0].task_name == "a"
        assert instances[0].graph.critical_path_length() == pytest.approx(2.0)


class TestTaskInstance:
    def test_properties(self):
        task = single_scenario_task("a", chain_graph("g", [1.0, 2.0]))
        instance = TaskInstance(task=task, scenario=task.scenario("default"))
        assert instance.task_name == "a"
        assert instance.scenario_name == "default"
        assert len(instance.graph) == 2
