"""Unit tests for Pareto curves and points."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.taskgraph import chain_graph
from repro.platform.description import Platform
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.tcm.pareto import ParetoCurve, ParetoPoint, prune_dominated


def _point(key, time, energy, tiles=1):
    graph = chain_graph(f"g_{key}", [time])
    placed = build_initial_schedule(graph, Platform(tile_count=max(tiles, 1)))
    return ParetoPoint(key=key, execution_time=time, energy=energy,
                       tile_count=tiles, placed=placed)


class TestParetoPoint:
    def test_domination(self):
        fast_cheap = _point("a", 10.0, 5.0)
        slow_expensive = _point("b", 20.0, 9.0)
        assert fast_cheap.dominates(slow_expensive)
        assert not slow_expensive.dominates(fast_cheap)

    def test_equal_points_do_not_dominate(self):
        a = _point("a", 10.0, 5.0)
        b = _point("b", 10.0, 5.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_trade_off_points_do_not_dominate(self):
        fast_expensive = _point("a", 10.0, 9.0)
        slow_cheap = _point("b", 20.0, 5.0)
        assert not fast_expensive.dominates(slow_cheap)
        assert not slow_cheap.dominates(fast_expensive)


class TestPruneDominated:
    def test_removes_dominated(self):
        points = [_point("a", 10.0, 5.0), _point("b", 20.0, 9.0),
                  _point("c", 15.0, 3.0)]
        kept = prune_dominated(points)
        assert {p.key for p in kept} == {"a", "c"}

    def test_removes_duplicates(self):
        points = [_point("a", 10.0, 5.0, tiles=1), _point("b", 10.0, 5.0, tiles=2)]
        kept = prune_dominated(points)
        assert len(kept) == 1
        assert kept[0].tile_count == 1

    def test_sorted_by_time(self):
        points = [_point("slow", 30.0, 1.0), _point("fast", 10.0, 9.0),
                  _point("mid", 20.0, 5.0)]
        kept = prune_dominated(points)
        assert [p.key for p in kept] == ["fast", "mid", "slow"]


class TestParetoCurve:
    def _curve(self):
        return ParetoCurve("task", "scenario", [
            _point("tiles1", 30.0, 10.0, tiles=1),
            _point("tiles2", 18.0, 14.0, tiles=2),
            _point("tiles3", 12.0, 20.0, tiles=3),
            _point("tiles8", 12.0, 40.0, tiles=8),
        ])

    def test_needs_points(self):
        with pytest.raises(ConfigurationError):
            ParetoCurve("t", "s", [])

    def test_keeps_all_points_but_exposes_front(self):
        curve = self._curve()
        assert len(curve) == 4
        front_keys = {p.key for p in curve.pareto_points()}
        assert "tiles8" not in front_keys
        assert {"tiles1", "tiles2", "tiles3"} <= front_keys

    def test_fastest_prefers_larger_pool(self):
        curve = self._curve()
        assert curve.fastest().key == "tiles8"

    def test_most_economical(self):
        assert self._curve().most_economical().key == "tiles1"

    def test_point_lookup(self):
        curve = self._curve()
        assert curve.point("tiles2").tile_count == 2
        with pytest.raises(ConfigurationError):
            curve.point("tiles9")

    def test_best_under_deadline(self):
        curve = self._curve()
        assert curve.best_under_deadline(20.0).key == "tiles2"
        assert curve.best_under_deadline(100.0).key == "tiles1"
        # Infeasible deadline falls back to the fastest point.
        assert curve.best_under_deadline(1.0).key == "tiles8"

    def test_duplicate_keys_collapsed(self):
        curve = ParetoCurve("t", "s", [_point("p", 10.0, 5.0),
                                       _point("p", 11.0, 6.0)])
        assert len(curve) == 1
