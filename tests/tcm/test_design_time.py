"""Unit tests for the TCM design-time exploration."""

import pytest

from repro.core.hybrid import HybridPrefetchHeuristic
from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.scheduling.prefetch_bb import OptimalPrefetchScheduler
from repro.tcm.design_time import (
    TcmDesignTimeScheduler,
    point_key_for_tiles,
)
from repro.workloads.multimedia import multimedia_task_set


@pytest.fixture
def platform():
    return Platform(tile_count=8, reconfiguration_latency=4.0)


@pytest.fixture
def design_result(platform):
    return TcmDesignTimeScheduler(platform).explore(multimedia_task_set())


class TestExploration:
    def test_curve_per_scenario(self, design_result):
        task_set = multimedia_task_set()
        assert design_result.curve_count == task_set.scenario_count
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                assert len(curve) >= 1

    def test_missing_curve(self, design_result):
        with pytest.raises(ConfigurationError):
            design_result.curve("ghost", "default")

    def test_points_trade_time_for_energy(self, design_result):
        curve = design_result.curve("pattern_recognition", "default")
        front = curve.pareto_points()
        if len(front) > 1:
            times = [p.execution_time for p in front]
            energies = [p.energy for p in front]
            assert times == sorted(times)
            assert energies == sorted(energies, reverse=True)

    def test_full_pool_point_always_present(self, design_result, platform):
        full_key = point_key_for_tiles(platform.tile_count)
        for curve in design_result.curves.values():
            assert any(point.key == full_key for point in curve)

    def test_fastest_point_matches_critical_path(self, design_result):
        task_set = multimedia_task_set()
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                assert curve.fastest().execution_time == pytest.approx(
                    scenario.graph.critical_path_length()
                )

    def test_single_tile_point_serializes_work(self, design_result):
        task_set = multimedia_task_set()
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                point = curve.point(point_key_for_tiles(1))
                assert point.execution_time == pytest.approx(
                    scenario.graph.total_execution_time
                )

    def test_schedules_lists_every_point(self, design_result):
        listed = design_result.schedules()
        assert len(listed) == sum(len(curve)
                                  for curve in design_result.curves.values())

    def test_invalid_budgets_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            TcmDesignTimeScheduler(platform, tile_budgets=[0])
        with pytest.raises(ConfigurationError):
            TcmDesignTimeScheduler(platform, tile_budgets=[100])

    def test_explicit_budgets(self, platform):
        explorer = TcmDesignTimeScheduler(platform, tile_budgets=[1, 2])
        result = explorer.explore(multimedia_task_set())
        for curve in result.curves.values():
            assert all(point.tile_count in (1, 2) for point in curve)

    def test_build_design_store_covers_every_point(self, design_result):
        hybrid = HybridPrefetchHeuristic(4.0)
        store = design_result.build_design_store(hybrid)
        assert len(store) == len(design_result.schedules())


class TestDesignStoreMemoization:
    def test_equivalent_heuristics_share_one_store(self, design_result):
        first = design_result.build_design_store(HybridPrefetchHeuristic(4.0))
        second = design_result.build_design_store(HybridPrefetchHeuristic(4.0))
        assert second is first
        assert design_result.store_cache_hits >= 1

    def test_subclassed_design_engine_is_memoized(self, design_result):
        """Subclasses of the known engines no longer disable the cache.

        ``_scheduler_signature`` used to return ``None`` for anything that
        was not *exactly* a known type (the ``type(...) is`` pitfall), so a
        trivially subclassed engine silently rebuilt the store on every
        call.  The conservative fallback signature (class identity plus
        public scalar/scheduler configuration) restores memoization —
        without ever aliasing the subclass with its base class.
        """
        from repro.tcm.design_time import _scheduler_signature

        class TracingOptimal(OptimalPrefetchScheduler):
            pass

        base_signature = _scheduler_signature(OptimalPrefetchScheduler())
        sub_signature = _scheduler_signature(TracingOptimal())
        assert sub_signature is not None
        assert sub_signature != base_signature

        misses_before = design_result.store_cache_misses
        first = design_result.build_design_store(
            HybridPrefetchHeuristic(4.0, design_scheduler=TracingOptimal())
        )
        second = design_result.build_design_store(
            HybridPrefetchHeuristic(4.0, design_scheduler=TracingOptimal())
        )
        assert second is first
        assert design_result.store_cache_misses == misses_before + 1
        # The subclass store must not be served for the base engine or
        # vice versa (different signature, different cache slot).
        base_store = design_result.build_design_store(
            HybridPrefetchHeuristic(4.0)
        )
        assert base_store is not first or base_signature == sub_signature

    def test_undescribable_engine_stays_uncached_but_observably(
            self, design_result):
        """Engines with public state the signature cannot capture are not
        silently dropped any more: the miss is counted."""

        class StatefulEngine(OptimalPrefetchScheduler):
            def __init__(self):
                super().__init__()
                self.history = []  # public, non-scalar: cannot be described

        from repro.tcm.design_time import _scheduler_signature
        assert _scheduler_signature(StatefulEngine()) is None

        uncached_before = design_result.store_cache_uncached
        hybrid = HybridPrefetchHeuristic(4.0,
                                         design_scheduler=StatefulEngine())
        first = design_result.build_design_store(hybrid)
        second = design_result.build_design_store(hybrid)
        assert second is not first
        assert design_result.store_cache_uncached == uncached_before + 2

    def test_pool_attribute_does_not_change_the_signature(self):
        """Warm pools are perf-only: pooled and cold engines share a slot."""
        from repro.scheduling.pool import SchedulerPool
        from repro.tcm.design_time import _scheduler_signature

        class Wrapped(OptimalPrefetchScheduler):
            pass

        cold = Wrapped()
        pooled = Wrapped(pool=SchedulerPool())
        assert _scheduler_signature(cold) == _scheduler_signature(pooled)
