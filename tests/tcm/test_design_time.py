"""Unit tests for the TCM design-time exploration."""

import pytest

from repro.core.hybrid import HybridPrefetchHeuristic
from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.tcm.design_time import (
    TcmDesignTimeScheduler,
    point_key_for_tiles,
)
from repro.workloads.multimedia import multimedia_task_set


@pytest.fixture
def platform():
    return Platform(tile_count=8, reconfiguration_latency=4.0)


@pytest.fixture
def design_result(platform):
    return TcmDesignTimeScheduler(platform).explore(multimedia_task_set())


class TestExploration:
    def test_curve_per_scenario(self, design_result):
        task_set = multimedia_task_set()
        assert design_result.curve_count == task_set.scenario_count
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                assert len(curve) >= 1

    def test_missing_curve(self, design_result):
        with pytest.raises(ConfigurationError):
            design_result.curve("ghost", "default")

    def test_points_trade_time_for_energy(self, design_result):
        curve = design_result.curve("pattern_recognition", "default")
        front = curve.pareto_points()
        if len(front) > 1:
            times = [p.execution_time for p in front]
            energies = [p.energy for p in front]
            assert times == sorted(times)
            assert energies == sorted(energies, reverse=True)

    def test_full_pool_point_always_present(self, design_result, platform):
        full_key = point_key_for_tiles(platform.tile_count)
        for curve in design_result.curves.values():
            assert any(point.key == full_key for point in curve)

    def test_fastest_point_matches_critical_path(self, design_result):
        task_set = multimedia_task_set()
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                assert curve.fastest().execution_time == pytest.approx(
                    scenario.graph.critical_path_length()
                )

    def test_single_tile_point_serializes_work(self, design_result):
        task_set = multimedia_task_set()
        for task in task_set:
            for scenario in task:
                curve = design_result.curve(task.name, scenario.name)
                point = curve.point(point_key_for_tiles(1))
                assert point.execution_time == pytest.approx(
                    scenario.graph.total_execution_time
                )

    def test_schedules_lists_every_point(self, design_result):
        listed = design_result.schedules()
        assert len(listed) == sum(len(curve)
                                  for curve in design_result.curves.values())

    def test_invalid_budgets_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            TcmDesignTimeScheduler(platform, tile_budgets=[0])
        with pytest.raises(ConfigurationError):
            TcmDesignTimeScheduler(platform, tile_budgets=[100])

    def test_explicit_budgets(self, platform):
        explorer = TcmDesignTimeScheduler(platform, tile_budgets=[1, 2])
        result = explorer.explore(multimedia_task_set())
        for curve in result.curves.values():
            assert all(point.tile_count in (1, 2) for point in curve)

    def test_build_design_store_covers_every_point(self, design_result):
        hybrid = HybridPrefetchHeuristic(4.0)
        store = design_result.build_design_store(hybrid)
        assert len(store) == len(design_result.schedules())
