"""Unit tests for the TCM run-time scheduler."""

import random

import pytest

from repro.platform.description import Platform
from repro.tcm.design_time import TcmDesignTimeScheduler
from repro.tcm.run_time import TcmRunTimeScheduler
from repro.workloads.multimedia import multimedia_task_set


@pytest.fixture
def scheduler():
    platform = Platform(tile_count=8, reconfiguration_latency=4.0)
    design = TcmDesignTimeScheduler(platform).explore(multimedia_task_set())
    return TcmRunTimeScheduler(design)


@pytest.fixture
def instances(scheduler):
    task_set = multimedia_task_set()
    return scheduler.identify_scenarios(task_set, random.Random(1))


class TestScenarioIdentification:
    def test_one_instance_per_task(self, scheduler):
        task_set = multimedia_task_set()
        instances = scheduler.identify_scenarios(task_set, random.Random(5))
        assert [i.task_name for i in instances] == task_set.task_names

    def test_deterministic_given_seed(self, scheduler):
        task_set = multimedia_task_set()
        first = [i.scenario_name
                 for i in scheduler.identify_scenarios(task_set, random.Random(7))]
        second = [i.scenario_name
                  for i in scheduler.identify_scenarios(task_set, random.Random(7))]
        assert first == second


class TestSelection:
    def test_without_deadline_selects_most_economical(self, scheduler, instances):
        selection = scheduler.select(instances, deadline=None)
        assert selection.meets_deadline
        for item in selection.scheduled:
            curve = scheduler.design_result.curve(item.task_name,
                                                  item.scenario_name)
            assert item.point.energy == pytest.approx(
                curve.most_economical().energy
            )

    def test_tight_deadline_selects_faster_points(self, scheduler, instances):
        relaxed = scheduler.select(instances, deadline=None)
        minimum_time = sum(
            scheduler.design_result.curve(i.task_name, i.scenario_name)
            .fastest().execution_time
            for i in instances
        )
        tight = scheduler.select(instances, deadline=minimum_time * 1.05)
        assert tight.total_execution_time <= relaxed.total_execution_time
        assert tight.total_energy >= relaxed.total_energy - 1e-9
        assert tight.meets_deadline

    def test_impossible_deadline_reported(self, scheduler, instances):
        selection = scheduler.select(instances, deadline=1.0)
        assert not selection.meets_deadline

    def test_order_preserved(self, scheduler, instances):
        selection = scheduler.select(instances, deadline=None)
        assert [s.task_name for s in selection.scheduled] == \
            [i.task_name for i in instances]

    def test_empty_instances(self, scheduler):
        selection = scheduler.select([], deadline=10.0)
        assert selection.scheduled == ()
        assert selection.total_execution_time == 0.0
        assert selection.meets_deadline

    def test_scheduled_task_properties(self, scheduler, instances):
        selection = scheduler.select(instances, deadline=None)
        item = selection.scheduled[0]
        assert item.task_name == instances[0].task_name
        assert item.scenario_name == instances[0].scenario_name
        assert item.point_key.startswith("tiles")
