"""Fault-injection tests: configuration upsets between iterations."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.sim.approaches import HybridApproach, RunTimeApproach
from repro.sim.simulator import SimulationConfig, SystemSimulator
from repro.workloads.multimedia import MultimediaWorkload

ITERATIONS = 40


def run_with_fault_rate(approach_factory, fault_rate, tile_count=16, seed=3):
    workload = MultimediaWorkload()
    platform = Platform(tile_count=tile_count,
                        reconfiguration_latency=workload.reconfiguration_latency)
    config = SimulationConfig(iterations=ITERATIONS, seed=seed,
                              configuration_fault_rate=fault_rate)
    simulator = SystemSimulator(workload, platform, approach_factory(), config)
    return simulator.run().metrics


class TestFaultInjection:
    def test_invalid_fault_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(configuration_fault_rate=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(configuration_fault_rate=-0.1)

    def test_zero_fault_rate_is_default_behaviour(self):
        baseline = run_with_fault_rate(RunTimeApproach, 0.0)
        explicit = run_with_fault_rate(RunTimeApproach, 0.0)
        assert baseline.overhead_percent == pytest.approx(
            explicit.overhead_percent
        )

    def test_faults_reduce_reuse(self):
        healthy = run_with_fault_rate(RunTimeApproach, 0.0)
        faulty = run_with_fault_rate(RunTimeApproach, 1.0)
        assert faulty.reuse_rate < healthy.reuse_rate
        assert faulty.total_loads > healthy.total_loads

    def test_faults_increase_hybrid_overhead_but_keep_it_bounded(self):
        healthy = run_with_fault_rate(HybridApproach, 0.0)
        faulty = run_with_fault_rate(HybridApproach, 1.0)
        assert faulty.overhead_percent >= healthy.overhead_percent
        # Even with every configuration lost between iterations the hybrid
        # heuristic only pays its initialization phases, far below the
        # no-reuse design-time level of ~7%.
        assert faulty.overhead_percent < 10.0

    def test_partial_fault_rate_sits_between_extremes(self):
        none = run_with_fault_rate(RunTimeApproach, 0.0)
        some = run_with_fault_rate(RunTimeApproach, 0.3)
        all_faults = run_with_fault_rate(RunTimeApproach, 1.0)
        assert none.reuse_rate >= some.reuse_rate >= all_faults.reuse_rate
