"""Fault-injection tests: configuration upsets between iterations."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.sim.approaches import HybridApproach, RunTimeApproach
from repro.sim.simulator import SimulationConfig, SystemSimulator
from repro.workloads.multimedia import MultimediaWorkload

ITERATIONS = 40


def run_with_fault_rate(approach_factory, fault_rate, seed=3,
                        design_result=None):
    workload = MultimediaWorkload()
    platform = Platform(tile_count=16,
                        reconfiguration_latency=workload.reconfiguration_latency)
    config = SimulationConfig(iterations=ITERATIONS, seed=seed,
                              configuration_fault_rate=fault_rate)
    simulator = SystemSimulator(workload, platform, approach_factory(), config,
                                design_result=design_result)
    return simulator.run().metrics


@pytest.fixture
def faulty(multimedia_design16):
    """run_with_fault_rate bound to the shared 16-tile exploration."""
    def run(approach_factory, fault_rate, seed=3):
        return run_with_fault_rate(approach_factory, fault_rate, seed=seed,
                                   design_result=multimedia_design16)
    return run


class TestFaultInjection:
    def test_invalid_fault_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(configuration_fault_rate=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(configuration_fault_rate=-0.1)

    def test_zero_fault_rate_is_default_behaviour(self, faulty):
        baseline = faulty(RunTimeApproach, 0.0)
        explicit = faulty(RunTimeApproach, 0.0)
        assert baseline.overhead_percent == pytest.approx(
            explicit.overhead_percent
        )

    def test_faults_reduce_reuse(self, faulty):
        healthy = faulty(RunTimeApproach, 0.0)
        upset = faulty(RunTimeApproach, 1.0)
        assert upset.reuse_rate < healthy.reuse_rate
        assert upset.total_loads > healthy.total_loads

    def test_faults_increase_hybrid_overhead_but_keep_it_bounded(self, faulty):
        healthy = faulty(HybridApproach, 0.0)
        upset = faulty(HybridApproach, 1.0)
        assert upset.overhead_percent >= healthy.overhead_percent
        # Even with every configuration lost between iterations the hybrid
        # heuristic only pays its initialization phases, far below the
        # no-reuse design-time level of ~7%.
        assert upset.overhead_percent < 10.0

    def test_partial_fault_rate_sits_between_extremes(self, faulty):
        none = faulty(RunTimeApproach, 0.0)
        some = faulty(RunTimeApproach, 0.3)
        all_faults = faulty(RunTimeApproach, 1.0)
        assert none.reuse_rate >= some.reuse_rate >= all_faults.reuse_rate
