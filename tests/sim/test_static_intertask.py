"""Tests for the design-time approach's static cross-task prefetching."""

import pytest

from repro.platform.description import Platform
from repro.reuse.reuse import ReuseModule
from repro.sim.approaches import DesignTimePrefetchApproach, TaskContext
from repro.sim.simulator import SimulationConfig, SystemSimulator
from repro.sim.state import SystemState
from repro.tcm.design_time import TcmDesignTimeScheduler
from repro.tcm.run_time import ScheduledTask
from repro.workloads.pocketgl import PocketGLWorkload

LATENCY = 4.0


@pytest.fixture(scope="module")
def pocketgl_setup():
    workload = PocketGLWorkload()
    platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
    design = TcmDesignTimeScheduler(platform).explore(workload.task_set)
    return workload, platform, design


def scheduled_for(workload, design, task_name, scenario_name="s0"):
    task = workload.task_set.task(task_name)
    instance = workload.task_set.instances({task_name: scenario_name})[0]
    curve = design.curve(task_name, scenario_name)
    return ScheduledTask(instance=instance, point=curve.fastest())


class TestStaticInterTaskPrefetch:
    def test_prefetches_next_task_within_iteration(self, pocketgl_setup):
        workload, platform, design = pocketgl_setup
        approach = DesignTimePrefetchApproach(static_intertask=True)
        approach.prepare(design, LATENCY)
        state = SystemState(platform=platform)
        current = scheduled_for(workload, design, "geometry")
        following = scheduled_for(workload, design, "clipping")
        ctx = TaskContext(
            scheduled=current, release_time=0.0, state=state,
            reuse_module=ReuseModule(), reconfiguration_latency=LATENCY,
            next_scheduled=following, next_crosses_iteration=False,
        )
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches >= 1
        # The prefetched configuration is skipped when the next task runs.
        next_ctx = TaskContext(
            scheduled=following, release_time=outcome.finish_time, state=state,
            reuse_module=ReuseModule(), reconfiguration_latency=LATENCY,
            next_scheduled=None,
        )
        next_outcome = approach.execute_task(next_ctx)
        drhw = len(following.point.placed.drhw_names)
        assert next_outcome.record.loads_performed < drhw
        assert next_outcome.record.overhead == pytest.approx(0.0, abs=1e-6)

    def test_does_not_prefetch_across_iteration_boundary(self, pocketgl_setup):
        workload, platform, design = pocketgl_setup
        approach = DesignTimePrefetchApproach(static_intertask=True)
        approach.prepare(design, LATENCY)
        state = SystemState(platform=platform)
        current = scheduled_for(workload, design, "display")
        following = scheduled_for(workload, design, "geometry")
        ctx = TaskContext(
            scheduled=current, release_time=0.0, state=state,
            reuse_module=ReuseModule(), reconfiguration_latency=LATENCY,
            next_scheduled=following, next_crosses_iteration=True,
        )
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches == 0

    def test_disabled_by_default(self, pocketgl_setup):
        workload, platform, design = pocketgl_setup
        approach = DesignTimePrefetchApproach()
        approach.prepare(design, LATENCY)
        state = SystemState(platform=platform)
        ctx = TaskContext(
            scheduled=scheduled_for(workload, design, "geometry"),
            release_time=0.0, state=state, reuse_module=ReuseModule(),
            reconfiguration_latency=LATENCY,
            next_scheduled=scheduled_for(workload, design, "clipping"),
        )
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches == 0

    def test_full_simulation_benefits_from_static_prefetch(self, pocketgl_setup):
        workload, platform, _ = pocketgl_setup
        config = SimulationConfig(iterations=30, seed=4)
        plain = SystemSimulator(workload, platform,
                                DesignTimePrefetchApproach(), config).run()
        static = SystemSimulator(
            workload, platform,
            DesignTimePrefetchApproach(static_intertask=True), config,
        ).run()
        assert static.overhead_percent < plain.overhead_percent
        # Still no reuse in either configuration.
        assert plain.metrics.reuse_rate == 0.0
        assert static.metrics.reuse_rate == 0.0
