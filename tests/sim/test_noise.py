"""Tests for the stochastic perturbation layer (repro.sim.noise)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.sim import (
    APPROACHES,
    NoiseModel,
    PerturbationConfig,
    SimulationConfig,
    SystemSimulator,
    make_approach,
    simulate,
)
from repro.workloads.multimedia import MultimediaWorkload
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

NOISY = PerturbationConfig(latency_sigma=0.3, latency_jitter=1.0,
                           execution_sigma=0.2, load_failure_rate=0.25)


def small_workload() -> SyntheticWorkload:
    return SyntheticWorkload(spec=SyntheticSpec(task_count=3,
                                                subtasks_per_task=6,
                                                seed=11))


def run(approach_name: str, perturbation, *, workload=None, tiles: int = 6,
        iterations: int = 15, seed: int = 2005, fault_rate: float = 0.0,
        collect_trace: bool = False):
    workload = workload or small_workload()
    platform = Platform(
        tile_count=tiles,
        reconfiguration_latency=workload.reconfiguration_latency,
    )
    config = SimulationConfig(iterations=iterations, seed=seed,
                              configuration_fault_rate=fault_rate,
                              collect_trace=collect_trace,
                              perturbation=perturbation)
    simulator = SystemSimulator(workload, platform,
                                make_approach(approach_name), config=config)
    return simulator.run()


class TestPerturbationConfig:
    def test_defaults_are_null(self):
        config = PerturbationConfig()
        assert config.is_null
        assert config.label == "noise[off]"

    def test_any_intensity_is_not_null(self):
        assert not PerturbationConfig(latency_sigma=0.1).is_null
        assert not PerturbationConfig(latency_jitter=0.1).is_null
        assert not PerturbationConfig(execution_sigma=0.1).is_null
        assert not PerturbationConfig(load_failure_rate=0.1).is_null

    def test_seed_offsets_do_not_affect_nullness(self):
        assert PerturbationConfig(latency_seed=7, fault_seed=3).is_null

    @pytest.mark.parametrize("kwargs", [
        dict(latency_sigma=-0.1),
        dict(latency_jitter=-1.0),
        dict(execution_sigma=-0.5),
        dict(load_failure_rate=-0.1),
        dict(load_failure_rate=1.5),
        dict(max_retries=-1),
        dict(failure_detection_fraction=0.0),
        dict(failure_detection_fraction=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            PerturbationConfig(**kwargs)

    def test_payload_round_trip(self):
        config = PerturbationConfig(latency_sigma=0.2, load_failure_rate=0.3,
                                    max_retries=5, fault_seed=9)
        assert PerturbationConfig.from_payload(config.payload()) == config

    def test_label_names_active_sources(self):
        label = PerturbationConfig(latency_sigma=0.25,
                                   load_failure_rate=0.1).label
        assert "lat=0.25" in label and "fail=0.1" in label
        assert "exec" not in label


class TestNoiseModelStreams:
    def test_streams_are_independent(self):
        """Changing one stream's seed never shifts the other streams."""
        base = PerturbationConfig(latency_sigma=0.3, latency_jitter=0.5,
                                  execution_sigma=0.2, load_failure_rate=0.5)
        jittered = PerturbationConfig(latency_sigma=0.3, latency_jitter=0.5,
                                      execution_sigma=0.2,
                                      load_failure_rate=0.5, latency_seed=99)
        one = NoiseModel(base, seed=2005)
        two = NoiseModel(jittered, seed=2005)
        # Latency draws differ (that stream was reseeded)...
        assert [one.realized_latency(4.0) for _ in range(32)] \
            != [two.realized_latency(4.0) for _ in range(32)]
        # ...but the fault and execution sequences are untouched.
        assert [one.draw_load_failure() for _ in range(64)] \
            == [two.draw_load_failure() for _ in range(64)]
        assert [one.realized_duration(3.0) for _ in range(32)] \
            == [two.realized_duration(3.0) for _ in range(32)]

    def test_fault_seed_only_moves_fault_stream(self):
        base = PerturbationConfig(latency_sigma=0.3, load_failure_rate=0.5)
        refaulted = PerturbationConfig(latency_sigma=0.3,
                                       load_failure_rate=0.5, fault_seed=1)
        one = NoiseModel(base, seed=2005)
        two = NoiseModel(refaulted, seed=2005)
        assert [one.realized_latency(4.0) for _ in range(32)] \
            == [two.realized_latency(4.0) for _ in range(32)]
        assert [one.draw_load_failure() for _ in range(128)] \
            != [two.draw_load_failure() for _ in range(128)]

    def test_latency_noise_is_mean_one(self):
        model = NoiseModel(PerturbationConfig(latency_sigma=0.3), seed=7)
        draws = [model.realized_latency(1.0) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(1.0, rel=0.05)
        assert min(draws) > 0.0

    def test_execution_noise_is_mean_one(self):
        model = NoiseModel(PerturbationConfig(execution_sigma=0.25), seed=7)
        draws = [model.realized_duration(2.0) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.05)

    def test_null_model_is_identity(self):
        model = NoiseModel(PerturbationConfig(), seed=7)
        assert model.realized_latency(4.0) == 4.0
        assert model.realized_duration(2.5) == 2.5
        assert model.draw_load_failure() is False


class TestZeroNoiseBitIdentity:
    @pytest.mark.parametrize("name", sorted(APPROACHES))
    def test_null_config_matches_no_config(self, name):
        """perturbation=None and a null config are bit-identical."""
        plain = run(name, None, fault_rate=0.05, collect_trace=True)
        nulled = run(name, PerturbationConfig(), fault_rate=0.05,
                     collect_trace=True)
        assert plain.metrics == nulled.metrics
        assert plain.iterations == nulled.iterations

    def test_zero_noise_records_have_zero_stochastic_counters(self):
        result = run("hybrid", None)
        metrics = result.metrics
        assert metrics.total_loads_failed == 0
        assert metrics.total_loads_retried == 0
        assert metrics.total_prefetches_abandoned == 0
        assert metrics.total_fault_reloads == 0
        assert metrics.total_faults_injected == 0


class TestSimulatorUnderNoise:
    @pytest.mark.parametrize("name", sorted(APPROACHES))
    def test_same_seed_same_result(self, name):
        """Same (seed, PerturbationConfig) => bit-identical results."""
        first = run(name, NOISY, collect_trace=False)
        second = run(name, NOISY, collect_trace=False)
        assert first.metrics == second.metrics
        assert first.iterations == second.iterations

    def test_different_seed_different_result(self):
        assert run("hybrid", NOISY, seed=1).metrics \
            != run("hybrid", NOISY, seed=2).metrics

    def test_latency_seed_leaves_fault_sequence_unchanged(self):
        """Independent streams at the simulator level.

        With the no-prefetch approach every fault draw belongs to an
        in-task load of a noise-independent plan, so reshuffling the
        latency stream must reproduce the exact failure/retry sequence.
        """
        base = PerturbationConfig(latency_sigma=0.3, latency_jitter=1.0,
                                  load_failure_rate=0.3)
        reshuffled = PerturbationConfig(latency_sigma=0.3, latency_jitter=1.0,
                                        load_failure_rate=0.3,
                                        latency_seed=42)
        one = run("no-prefetch", base, collect_trace=True)
        two = run("no-prefetch", reshuffled, collect_trace=True)
        assert one.metrics.total_loads_failed > 0
        assert one.metrics.total_loads_failed \
            == two.metrics.total_loads_failed
        assert [r.loads_failed for r in one.trace.records] \
            == [r.loads_failed for r in two.trace.records]
        # The timings themselves did change.
        assert one.metrics.total_actual_time \
            != two.metrics.total_actual_time

    def test_failure_counters_are_populated(self):
        result = run("run-time+inter-task",
                     PerturbationConfig(load_failure_rate=0.4),
                     iterations=20, collect_trace=True)
        metrics = result.metrics
        assert metrics.total_loads_failed > 0
        assert metrics.total_loads_retried > 0
        records = result.trace.records
        assert sum(r.loads_failed for r in records) \
            == metrics.total_loads_failed
        assert sum(r.prefetches_abandoned for r in records) \
            == metrics.total_prefetches_abandoned

    def test_abandoned_prefetches_occur_under_heavy_failures(self):
        result = run("run-time+inter-task",
                     PerturbationConfig(load_failure_rate=0.6, max_retries=1),
                     iterations=20)
        assert result.metrics.total_prefetches_abandoned > 0

    def test_noise_costs_overhead(self):
        quiet = run("hybrid", None, iterations=20)
        noisy = run("hybrid", NOISY, iterations=20)
        assert noisy.metrics.total_overhead > quiet.metrics.total_overhead

    def test_fault_reloads_are_attributed(self):
        result = run("no-prefetch", None, fault_rate=0.3, iterations=20)
        metrics = result.metrics
        assert metrics.total_faults_injected > 0
        assert 0 < metrics.total_fault_reloads \
            <= metrics.total_faults_injected
        assert 0.0 < metrics.fault_reload_fraction <= 1.0

    def test_trace_collected_under_noise(self):
        result = run("hybrid", NOISY, collect_trace=True, iterations=5)
        assert result.trace is not None
        assert len(result.trace.records) == len(
            [t for it in result.iterations for t in it.tasks]
        )

    def test_multimedia_workload_under_noise(self):
        """The paper workload survives the stochastic layer end to end."""
        result = simulate(
            MultimediaWorkload(), 8, make_approach("hybrid"),
            config=SimulationConfig(iterations=10, seed=2005,
                                    perturbation=NOISY),
        )
        assert result.metrics.task_executions > 0
        assert result.metrics.total_overhead >= 0.0


class TestTerminationUnderAdversarialFaults:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(sorted(APPROACHES)),
        failure_rate=st.floats(min_value=0.5, max_value=1.0),
        max_retries=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    def test_every_approach_terminates(self, name, failure_rate,
                                       max_retries, seed):
        """No deadlock / livelock even when nearly every load fails."""
        adversarial = PerturbationConfig(
            latency_sigma=0.5, latency_jitter=2.0, execution_sigma=0.4,
            load_failure_rate=failure_rate, max_retries=max_retries,
        )
        result = run(name, adversarial, iterations=3, seed=seed,
                     fault_rate=0.2)
        assert result.metrics.task_executions > 0
        finishes = [task.finish_time for it in result.iterations
                    for task in it.tasks]
        assert all(f < float("inf") for f in finishes)
        assert finishes == sorted(finishes)
