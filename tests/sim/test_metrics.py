"""Unit tests for simulation metrics aggregation."""

import pytest

from repro.sim.metrics import (
    IterationRecord,
    SimulationMetrics,
    TaskExecutionRecord,
    aggregate_metrics,
)


def make_record(overhead=2.0, ideal=50.0, loads=3, reused=1, **kwargs):
    defaults = dict(
        task_name="t", scenario_name="s", point_key="tiles8",
        release_time=0.0, finish_time=ideal + overhead,
        ideal_makespan=ideal, overhead=overhead,
        loads_performed=loads, loads_reused=reused, loads_cancelled=0,
        initialization_loads=1, intertask_prefetches=0,
        scheduler_operations=10, reuse_operations=4, energy=100.0,
    )
    defaults.update(kwargs)
    return TaskExecutionRecord(**defaults)


class TestTaskExecutionRecord:
    def test_span_and_percent(self):
        record = make_record(overhead=5.0, ideal=50.0)
        assert record.span == pytest.approx(55.0)
        assert record.overhead_percent == pytest.approx(10.0)
        assert record.drhw_subtasks == 4

    def test_zero_ideal_time(self):
        record = make_record(ideal=0.0, overhead=0.0, finish_time=0.0)
        assert record.overhead_percent == 0.0


class TestIterationRecord:
    def test_sums(self):
        iteration = IterationRecord(index=0, tasks=(make_record(), make_record()))
        assert iteration.ideal_time == pytest.approx(100.0)
        assert iteration.actual_time == pytest.approx(104.0)
        assert iteration.overhead == pytest.approx(4.0)


class TestAggregation:
    def test_aggregate(self):
        iterations = [
            IterationRecord(index=0, tasks=(make_record(), make_record())),
            IterationRecord(index=1, tasks=(make_record(overhead=0.0),)),
        ]
        metrics = aggregate_metrics("hybrid", "multimedia", 8, iterations)
        assert metrics.iterations == 2
        assert metrics.task_executions == 3
        assert metrics.total_overhead == pytest.approx(4.0)
        assert metrics.total_ideal_time == pytest.approx(150.0)
        assert metrics.overhead_percent == pytest.approx(100 * 4.0 / 150.0)
        assert metrics.total_loads == 9
        assert metrics.total_reused == 3
        assert metrics.reuse_rate == pytest.approx(3 / 12)
        assert metrics.average_loads_per_task == pytest.approx(3.0)
        assert metrics.average_scheduler_operations == pytest.approx(10.0)

    def test_empty_aggregation(self):
        metrics = aggregate_metrics("x", "w", 4, [])
        assert metrics.overhead_percent == 0.0
        assert metrics.reuse_rate == 0.0
        assert metrics.average_scheduler_operations == 0.0

    def test_hidden_fraction(self):
        iterations = [IterationRecord(index=0, tasks=(make_record(overhead=2.0),))]
        metrics = aggregate_metrics("x", "w", 4, iterations)
        assert metrics.hidden_fraction(baseline_overhead=20.0) == pytest.approx(0.9)
        assert metrics.hidden_fraction(baseline_overhead=0.0) == 1.0
