"""Tests for the PI-controlled adaptive prefetch approach."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    AdaptivePrefetchApproach,
    PerturbationConfig,
    SimulationConfig,
    make_approach,
    simulate,
)
from repro.sim.metrics import TaskExecutionRecord
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload


def make_record(overhead: float = 0.0, ideal: float = 10.0,
                loads: int = 2, intertask: int = 2,
                abandoned: int = 0, retried: int = 0) -> TaskExecutionRecord:
    return TaskExecutionRecord(
        task_name="t", scenario_name="s", point_key="p",
        release_time=0.0, finish_time=ideal + overhead,
        ideal_makespan=ideal, overhead=overhead,
        loads_performed=loads, loads_reused=0, loads_cancelled=0,
        initialization_loads=0, intertask_prefetches=intertask,
        scheduler_operations=0, reuse_operations=0, energy=0.0,
        loads_retried=retried, prefetches_abandoned=abandoned,
    )


class TestKnobs:
    def test_registered(self):
        assert isinstance(make_approach("adaptive"),
                          AdaptivePrefetchApproach)

    @pytest.mark.parametrize("kwargs", [
        dict(kp=-0.1),
        dict(ki=-0.1),
        dict(headroom=-1),
        dict(max_depth=0),
        dict(headroom=5, max_depth=4),
        dict(lookback=0),
        dict(target_overhead=-0.01),
        dict(waste_weight=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptivePrefetchApproach(**kwargs)

    def test_depth_starts_at_max(self):
        approach = AdaptivePrefetchApproach(max_depth=6)
        assert approach.depth == 6


class TestControllerDynamics:
    def test_waste_throttles_depth_down_to_headroom(self):
        approach = AdaptivePrefetchApproach(headroom=1, max_depth=8)
        for _ in range(30):
            approach.observe(make_record(overhead=0.0, abandoned=3,
                                         retried=4))
        assert approach.depth == approach.headroom

    def test_stall_pushes_depth_back_up(self):
        approach = AdaptivePrefetchApproach(headroom=1, max_depth=8)
        for _ in range(30):
            approach.observe(make_record(overhead=0.0, abandoned=3,
                                         retried=4))
        assert approach.depth == approach.headroom
        for _ in range(30):
            approach.observe(make_record(overhead=5.0))
        assert approach.depth == approach.max_depth

    def test_on_target_record_slowly_relaxes(self):
        """Overhead at the setpoint with no waste leaves no strong push."""
        approach = AdaptivePrefetchApproach(headroom=1, max_depth=8,
                                            target_overhead=0.05)
        approach.observe(make_record(overhead=0.5, ideal=10.0))
        assert approach.depth == approach.max_depth

    def test_depth_stays_clamped(self):
        approach = AdaptivePrefetchApproach(headroom=2, max_depth=5)
        for _ in range(50):
            approach.observe(make_record(overhead=100.0))
        assert approach.depth == 5
        for _ in range(50):
            approach.observe(make_record(abandoned=10))
        assert approach.depth == 2

    def test_error_window_is_bounded(self):
        approach = AdaptivePrefetchApproach(lookback=4)
        for _ in range(20):
            approach.observe(make_record(overhead=1.0))
        assert len(approach._errors) == 4

    def test_prepare_resets_controller(self):
        workload = SyntheticWorkload(spec=SyntheticSpec(
            task_count=2, subtasks_per_task=4, seed=3))
        approach = AdaptivePrefetchApproach()
        noisy = SimulationConfig(
            iterations=8, seed=7,
            perturbation=PerturbationConfig(load_failure_rate=0.5),
        )
        first = simulate(workload, 4, approach, config=noisy)
        # Re-running on the same (dirty) instance must reproduce the run:
        # prepare() clears the feedback the first run accumulated.
        second = simulate(workload, 4, approach, config=noisy)
        assert first.metrics == second.metrics


class TestEndToEnd:
    def test_adaptive_no_worse_than_design_time_under_harsh_noise(self):
        workload = SyntheticWorkload(spec=SyntheticSpec(
            task_count=3, subtasks_per_task=6, seed=11))
        harsh = SimulationConfig(
            iterations=15, seed=2005,
            perturbation=PerturbationConfig(
                latency_sigma=0.3, latency_jitter=1.0,
                execution_sigma=0.2, load_failure_rate=0.3,
            ),
        )
        adaptive = simulate(workload, 6, make_approach("adaptive"),
                            config=harsh)
        design = simulate(workload, 6, make_approach("design-time"),
                          config=harsh)
        assert adaptive.metrics.overhead_percent \
            <= design.metrics.overhead_percent + 1e-9

    def test_zero_noise_matches_plain_run_time_ordering(self):
        """Without noise the adaptive approach is still a sane scheduler."""
        workload = SyntheticWorkload(spec=SyntheticSpec(
            task_count=3, subtasks_per_task=6, seed=11))
        config = SimulationConfig(iterations=15, seed=2005)
        adaptive = simulate(workload, 6, make_approach("adaptive"),
                            config=config)
        no_prefetch = simulate(workload, 6, make_approach("no-prefetch"),
                               config=config)
        assert adaptive.metrics.total_overhead \
            <= no_prefetch.metrics.total_overhead + 1e-9
