"""Integration tests for the system simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.sim.approaches import (
    HybridApproach,
    NoPrefetchApproach,
    RunTimeApproach,
    RunTimeInterTaskApproach,
)
from repro.sim.simulator import (
    SimulationConfig,
    SystemSimulator,
    simulate,
    sweep_tile_counts,
)
from repro.workloads.multimedia import MultimediaWorkload
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

ITERATIONS = 40


@pytest.fixture(scope="module")
def workload():
    return MultimediaWorkload()


@pytest.fixture
def sim8(workload, multimedia_design8):
    """simulate() on the 8-tile platform with the shared exploration."""
    def run(approach, iterations=ITERATIONS, seed=3):
        return simulate(workload, 8, approach, iterations=iterations,
                        seed=seed, design_result=multimedia_design8)
    return run


@pytest.fixture
def sim16(workload, multimedia_design16):
    """simulate() on the 16-tile platform with the shared exploration."""
    def run(approach, iterations=ITERATIONS, seed=3):
        return simulate(workload, 16, approach, iterations=iterations,
                        seed=seed, design_result=multimedia_design16)
    return run


class TestSimulationConfig:
    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(iterations=0)

    def test_invalid_point_selection(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(point_selection="best")

    def test_deadline_required(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(point_selection="deadline")


class TestBasicRuns:
    def test_no_prefetch_run(self, sim8):
        result = sim8(NoPrefetchApproach())
        metrics = result.metrics
        assert metrics.iterations == ITERATIONS
        assert metrics.task_executions > ITERATIONS
        assert 10.0 < metrics.overhead_percent < 40.0
        assert metrics.total_actual_time >= metrics.total_ideal_time

    def test_hybrid_beats_no_prefetch(self, sim8):
        baseline = sim8(NoPrefetchApproach())
        hybrid = sim8(HybridApproach())
        assert hybrid.overhead_percent < baseline.overhead_percent
        assert hybrid.metrics.hidden_fraction(
            baseline.metrics.total_overhead) > 0.8

    def test_deterministic_given_seed(self, sim8):
        first = sim8(RunTimeApproach(), seed=11)
        second = sim8(RunTimeApproach(), seed=11)
        assert first.overhead_percent == pytest.approx(second.overhead_percent)
        assert first.metrics.total_loads == second.metrics.total_loads

    def test_shared_exploration_matches_fresh_exploration(self, workload,
                                                          sim8):
        """A precomputed design_result changes nothing about the metrics."""
        shared = sim8(RunTimeApproach(), iterations=10, seed=11)
        fresh = simulate(workload, 8, RunTimeApproach(),
                         iterations=10, seed=11)
        assert fresh.metrics == shared.metrics

    def test_different_seeds_differ(self, sim8):
        first = sim8(NoPrefetchApproach(), seed=1)
        second = sim8(NoPrefetchApproach(), seed=2)
        assert first.metrics.total_ideal_time != \
            pytest.approx(second.metrics.total_ideal_time)

    def test_trace_collection(self, workload, multimedia_design8):
        platform = Platform(tile_count=8,
                            reconfiguration_latency=workload.reconfiguration_latency)
        config = SimulationConfig(iterations=5, seed=1, collect_trace=True)
        simulator = SystemSimulator(workload, platform, NoPrefetchApproach(),
                                    config,
                                    design_result=multimedia_design8)
        result = simulator.run()
        assert result.trace is not None
        assert len(result.trace) == result.metrics.task_executions
        assert "task" in result.trace.format_table()

    def test_iteration_records_structure(self, sim8):
        result = sim8(NoPrefetchApproach(), iterations=10, seed=5)
        assert len(result.iterations) == 10
        for iteration in result.iterations:
            assert iteration.tasks
            assert iteration.overhead >= 0.0


class TestReuseDynamics:
    def test_more_tiles_more_reuse(self, sim8, sim16):
        small = sim8(RunTimeApproach())
        large = sim16(RunTimeApproach())
        assert large.metrics.reuse_rate > small.metrics.reuse_rate
        assert large.overhead_percent <= small.overhead_percent + 0.5

    def test_state_wipe_kills_reuse(self, workload, multimedia_design16):
        platform = Platform(tile_count=16,
                            reconfiguration_latency=workload.reconfiguration_latency)
        persistent = SystemSimulator(
            workload, platform, RunTimeApproach(),
            SimulationConfig(iterations=ITERATIONS, seed=3),
            design_result=multimedia_design16,
        ).run()
        wiped = SystemSimulator(
            workload, platform, RunTimeApproach(),
            SimulationConfig(iterations=ITERATIONS, seed=3,
                             keep_state_between_iterations=False),
            design_result=multimedia_design16,
        ).run()
        assert wiped.metrics.reuse_rate < persistent.metrics.reuse_rate

    def test_intertask_reduces_overhead(self, sim8):
        plain = sim8(RunTimeApproach())
        intertask = sim8(RunTimeInterTaskApproach())
        assert intertask.overhead_percent < plain.overhead_percent


class TestPointSelection:
    def test_deadline_mode_runs(self):
        spec = SyntheticSpec(task_count=2, subtasks_per_task=4,
                             scenarios_per_task=1, seed=3)
        workload = SyntheticWorkload(spec)
        platform = Platform(tile_count=6,
                            reconfiguration_latency=workload.reconfiguration_latency)
        config = SimulationConfig(iterations=5, seed=1,
                                  point_selection="deadline", deadline=500.0)
        result = SystemSimulator(workload, platform, RunTimeApproach(),
                                 config).run()
        assert result.metrics.task_executions > 0

    def test_sweep_tile_counts(self, workload):
        results = sweep_tile_counts(workload, tile_counts=(8, 12),
                                    approaches=[NoPrefetchApproach()],
                                    iterations=10, seed=1)
        assert set(results) == {"no-prefetch"}
        assert set(results["no-prefetch"]) == {8, 12}
