"""Integration tests for the system simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.sim.approaches import (
    HybridApproach,
    NoPrefetchApproach,
    RunTimeApproach,
    RunTimeInterTaskApproach,
)
from repro.sim.simulator import (
    SimulationConfig,
    SystemSimulator,
    simulate,
    sweep_tile_counts,
)
from repro.workloads.multimedia import MultimediaWorkload
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

ITERATIONS = 40


@pytest.fixture(scope="module")
def workload():
    return MultimediaWorkload()


class TestSimulationConfig:
    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(iterations=0)

    def test_invalid_point_selection(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(point_selection="best")

    def test_deadline_required(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(point_selection="deadline")


class TestBasicRuns:
    def test_no_prefetch_run(self, workload):
        result = simulate(workload, 8, NoPrefetchApproach(),
                          iterations=ITERATIONS, seed=3)
        metrics = result.metrics
        assert metrics.iterations == ITERATIONS
        assert metrics.task_executions > ITERATIONS
        assert 10.0 < metrics.overhead_percent < 40.0
        assert metrics.total_actual_time >= metrics.total_ideal_time

    def test_hybrid_beats_no_prefetch(self, workload):
        baseline = simulate(workload, 8, NoPrefetchApproach(),
                            iterations=ITERATIONS, seed=3)
        hybrid = simulate(workload, 8, HybridApproach(),
                          iterations=ITERATIONS, seed=3)
        assert hybrid.overhead_percent < baseline.overhead_percent
        assert hybrid.metrics.hidden_fraction(
            baseline.metrics.total_overhead) > 0.8

    def test_deterministic_given_seed(self, workload):
        first = simulate(workload, 8, RunTimeApproach(),
                         iterations=ITERATIONS, seed=11)
        second = simulate(workload, 8, RunTimeApproach(),
                          iterations=ITERATIONS, seed=11)
        assert first.overhead_percent == pytest.approx(second.overhead_percent)
        assert first.metrics.total_loads == second.metrics.total_loads

    def test_different_seeds_differ(self, workload):
        first = simulate(workload, 8, NoPrefetchApproach(),
                         iterations=ITERATIONS, seed=1)
        second = simulate(workload, 8, NoPrefetchApproach(),
                          iterations=ITERATIONS, seed=2)
        assert first.metrics.total_ideal_time != \
            pytest.approx(second.metrics.total_ideal_time)

    def test_trace_collection(self, workload):
        platform = Platform(tile_count=8,
                            reconfiguration_latency=workload.reconfiguration_latency)
        config = SimulationConfig(iterations=5, seed=1, collect_trace=True)
        simulator = SystemSimulator(workload, platform, NoPrefetchApproach(),
                                    config)
        result = simulator.run()
        assert result.trace is not None
        assert len(result.trace) == result.metrics.task_executions
        assert "task" in result.trace.format_table()

    def test_iteration_records_structure(self, workload):
        result = simulate(workload, 8, NoPrefetchApproach(),
                          iterations=10, seed=5)
        assert len(result.iterations) == 10
        for iteration in result.iterations:
            assert iteration.tasks
            assert iteration.overhead >= 0.0


class TestReuseDynamics:
    def test_more_tiles_more_reuse(self, workload):
        small = simulate(workload, 8, RunTimeApproach(),
                         iterations=ITERATIONS, seed=3)
        large = simulate(workload, 16, RunTimeApproach(),
                         iterations=ITERATIONS, seed=3)
        assert large.metrics.reuse_rate > small.metrics.reuse_rate
        assert large.overhead_percent <= small.overhead_percent + 0.5

    def test_state_wipe_kills_reuse(self, workload):
        platform = Platform(tile_count=16,
                            reconfiguration_latency=workload.reconfiguration_latency)
        persistent = SystemSimulator(
            workload, platform, RunTimeApproach(),
            SimulationConfig(iterations=ITERATIONS, seed=3),
        ).run()
        wiped = SystemSimulator(
            workload, platform, RunTimeApproach(),
            SimulationConfig(iterations=ITERATIONS, seed=3,
                             keep_state_between_iterations=False),
        ).run()
        assert wiped.metrics.reuse_rate < persistent.metrics.reuse_rate

    def test_intertask_reduces_overhead(self, workload):
        plain = simulate(workload, 8, RunTimeApproach(),
                         iterations=ITERATIONS, seed=3)
        intertask = simulate(workload, 8, RunTimeInterTaskApproach(),
                             iterations=ITERATIONS, seed=3)
        assert intertask.overhead_percent < plain.overhead_percent


class TestPointSelection:
    def test_deadline_mode_runs(self):
        spec = SyntheticSpec(task_count=2, subtasks_per_task=4,
                             scenarios_per_task=1, seed=3)
        workload = SyntheticWorkload(spec)
        platform = Platform(tile_count=6,
                            reconfiguration_latency=workload.reconfiguration_latency)
        config = SimulationConfig(iterations=5, seed=1,
                                  point_selection="deadline", deadline=500.0)
        result = SystemSimulator(workload, platform, RunTimeApproach(),
                                 config).run()
        assert result.metrics.task_executions > 0

    def test_sweep_tile_counts(self, workload):
        results = sweep_tile_counts(workload, tile_counts=(8, 12),
                                    approaches=[NoPrefetchApproach()],
                                    iterations=10, seed=1)
        assert set(results) == {"no-prefetch"}
        assert set(results["no-prefetch"]) == {8, 12}
