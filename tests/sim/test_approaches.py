"""Unit tests for the five scheduling approaches."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.description import Platform
from repro.reuse.reuse import ReuseModule
from repro.sim.approaches import (
    APPROACHES,
    DesignTimePrefetchApproach,
    HybridApproach,
    NoPrefetchApproach,
    RunTimeApproach,
    RunTimeInterTaskApproach,
    TaskContext,
    make_approach,
)
from repro.sim.state import SystemState
from repro.tcm.design_time import TcmDesignTimeScheduler
from repro.tcm.run_time import ScheduledTask
from repro.workloads.multimedia import multimedia_task_set

LATENCY = 4.0


@pytest.fixture
def design_result(multimedia_design8):
    """The shared session-scoped exploration (8 tiles, 4 ms latency)."""
    return multimedia_design8


def make_scheduled(design_result, task_name="jpeg_decoder",
                   scenario_name=None):
    task_set = multimedia_task_set()
    task = task_set.task(task_name)
    if scenario_name is None or scenario_name not in task.scenario_names:
        scenario_name = task.scenario_names[0]
    instance = task_set.instances({task_name: scenario_name})[0]
    curve = design_result.curve(task_name, scenario_name)
    return ScheduledTask(instance=instance, point=curve.fastest())


def make_context(design_result, task_name="jpeg_decoder", next_task=None,
                 release=0.0, state=None):
    platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
    state = state or SystemState(platform=platform)
    next_scheduled = (make_scheduled(design_result, next_task)
                      if next_task else None)
    return TaskContext(
        scheduled=make_scheduled(design_result, task_name),
        release_time=release,
        state=state,
        reuse_module=ReuseModule(),
        reconfiguration_latency=LATENCY,
        next_scheduled=next_scheduled,
    )


class TestRegistry:
    def test_all_approaches_registered(self):
        assert set(APPROACHES) == {"no-prefetch", "design-time", "run-time",
                                   "run-time+inter-task", "hybrid",
                                   "adaptive"}

    def test_make_approach(self):
        assert isinstance(make_approach("hybrid"), HybridApproach)

    def test_unknown_approach(self):
        with pytest.raises(ConfigurationError):
            make_approach("magic")


class TestNoPrefetchApproach:
    def test_cold_start_pays_every_load(self, design_result):
        approach = NoPrefetchApproach()
        ctx = make_context(design_result)
        outcome = approach.execute_task(ctx)
        record = outcome.record
        # Sequential JPEG: 4 loads, every one exposed on a cold platform.
        assert record.loads_performed == 4
        assert record.overhead == pytest.approx(16.0)
        assert record.loads_reused == 0
        assert outcome.finish_time > record.ideal_makespan

    def test_warm_start_reuses(self, design_result):
        approach = NoPrefetchApproach()
        platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
        state = SystemState(platform=platform)
        first = approach.execute_task(make_context(design_result, state=state))
        second_ctx = make_context(design_result, state=state,
                                  release=first.finish_time)
        second = approach.execute_task(second_ctx)
        assert second.record.loads_reused == 4
        assert second.record.overhead == pytest.approx(0.0)


class TestDesignTimeApproach:
    def test_requires_prepare(self, design_result):
        approach = DesignTimePrefetchApproach()
        with pytest.raises(ConfigurationError):
            approach.execute_task(make_context(design_result))

    def test_never_reuses(self, design_result):
        approach = DesignTimePrefetchApproach()
        approach.prepare(design_result, LATENCY)
        platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
        state = SystemState(platform=platform)
        first = approach.execute_task(make_context(design_result, state=state))
        second = approach.execute_task(
            make_context(design_result, state=state, release=first.finish_time)
        )
        assert first.record.loads_performed == 4
        assert second.record.loads_performed == 4
        assert second.record.loads_reused == 0
        # but the prefetch hides all loads except the first one
        assert second.record.overhead == pytest.approx(4.0)

    def test_zero_runtime_operations(self, design_result):
        approach = DesignTimePrefetchApproach()
        approach.prepare(design_result, LATENCY)
        outcome = approach.execute_task(make_context(design_result))
        assert outcome.record.scheduler_operations == 0


class TestRunTimeApproaches:
    def test_run_time_prefetch_hides_all_but_first(self, design_result):
        approach = RunTimeApproach()
        outcome = approach.execute_task(make_context(design_result))
        assert outcome.record.overhead == pytest.approx(4.0)
        assert outcome.record.scheduler_operations > 0

    def test_intertask_prefetches_next_task(self, design_result):
        approach = RunTimeInterTaskApproach()
        ctx = make_context(design_result, next_task="mpeg_encoder")
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches > 0
        # Prefetched configurations are now resident in the shared state.
        resident = set(ctx.state.resident_configurations)
        assert any(cfg.startswith("mpeg") for cfg in resident)

    def test_plain_run_time_never_prefetches_ahead(self, design_result):
        approach = RunTimeApproach()
        ctx = make_context(design_result, next_task="mpeg_encoder")
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches == 0


class TestHybridApproach:
    def test_requires_prepare(self, design_result):
        with pytest.raises(ConfigurationError):
            HybridApproach().execute_task(make_context(design_result))

    def test_cold_start_pays_initialization_only(self, design_result):
        approach = HybridApproach()
        approach.prepare(design_result, LATENCY)
        outcome = approach.execute_task(make_context(design_result))
        record = outcome.record
        assert record.initialization_loads == 1
        assert record.overhead == pytest.approx(4.0)
        # run-time cost is a handful of membership checks
        assert record.scheduler_operations == 4

    def test_warm_start_cancels_loads(self, design_result):
        approach = HybridApproach()
        approach.prepare(design_result, LATENCY)
        platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
        state = SystemState(platform=platform)
        first = approach.execute_task(make_context(design_result, state=state))
        second = approach.execute_task(
            make_context(design_result, state=state, release=first.finish_time)
        )
        assert second.record.overhead == pytest.approx(0.0)
        assert second.record.loads_cancelled == 3
        assert second.record.initialization_loads == 0
        assert second.record.loads_performed == 0

    def test_intertask_prefetch_covers_next_task(self, design_result):
        approach = HybridApproach()
        approach.prepare(design_result, LATENCY)
        platform = Platform(tile_count=8, reconfiguration_latency=LATENCY)
        state = SystemState(platform=platform)
        ctx = make_context(design_result, next_task="pattern_recognition",
                           state=state)
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches >= 1
        next_ctx = make_context(design_result, "pattern_recognition",
                                state=state, release=outcome.finish_time)
        next_outcome = approach.execute_task(next_ctx)
        # The critical subtask of pattern recognition was prefetched in the
        # idle tail, so the next task starts without an initialization phase.
        assert next_outcome.record.initialization_loads == 0
        assert next_outcome.record.overhead == pytest.approx(0.0)

    def test_store_property_before_prepare(self):
        with pytest.raises(ConfigurationError):
            HybridApproach().store

    def test_intertask_disabled(self, design_result):
        approach = HybridApproach(use_intertask=False)
        approach.prepare(design_result, LATENCY)
        ctx = make_context(design_result, next_task="mpeg_encoder")
        outcome = approach.execute_task(ctx)
        assert outcome.record.intertask_prefetches == 0
