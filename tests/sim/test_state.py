"""Unit tests for the shared platform state."""

import pytest

from repro.errors import PlatformError
from repro.platform.description import Platform
from repro.platform.tile import TileState
from repro.reuse.reuse import ReuseModule
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.sim.state import SystemState

LATENCY = 4.0


class TestSystemState:
    def test_initialization_creates_blank_tiles(self):
        state = SystemState(platform=Platform(tile_count=5))
        assert len(state.tiles) == 5
        assert all(tile.is_blank for tile in state.tiles)
        assert state.resident_configurations == {}

    def test_mismatched_tiles_rejected(self):
        with pytest.raises(PlatformError):
            SystemState(platform=Platform(tile_count=2),
                        tiles=[TileState(index=0)])

    def test_record_load_updates_residency_and_controller(self):
        state = SystemState(platform=Platform(tile_count=2))
        state.record_load(1, "dct", completion_time=4.0)
        assert state.resident_configurations == {"dct": 1}
        assert state.controller_free == pytest.approx(4.0)

    def test_advance_time_never_rewinds(self):
        state = SystemState(platform=Platform(tile_count=1))
        state.advance_time(10.0)
        state.advance_time(5.0)
        assert state.time == pytest.approx(10.0)

    def test_reset(self):
        state = SystemState(platform=Platform(tile_count=2))
        state.record_load(0, "a", 4.0)
        state.advance_time(100.0)
        state.reset()
        assert state.time == 0.0
        assert state.controller_free == 0.0
        assert all(tile.is_blank for tile in state.tiles)


class TestApplyTaskExecution:
    def test_residency_after_task(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        state = SystemState(platform=platform8)
        decision = ReuseModule().analyze(placed, state.tiles)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        load_finish = {load.subtask: load.finish for load in timed.loads}
        state.apply_task_execution(placed, decision.tile_binding, frozenset(),
                                   timed.executions, load_finish)
        resident = set(state.resident_configurations)
        # Every subtask was loaded on its own tile, so all stay resident.
        assert resident == set(chain4.subtask_names)

    def test_single_tile_keeps_only_last_configuration(self, chain4):
        platform = Platform(tile_count=1)
        placed = build_initial_schedule(chain4, platform)
        state = SystemState(platform=platform)
        decision = ReuseModule().analyze(placed, state.tiles)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        load_finish = {load.subtask: load.finish for load in timed.loads}
        state.apply_task_execution(placed, decision.tile_binding, frozenset(),
                                   timed.executions, load_finish)
        assert set(state.resident_configurations) == {"s3"}

    def test_reused_subtask_does_not_reset_load_time(self, diamond, platform8):
        placed = build_initial_schedule(diamond, platform8)
        state = SystemState(platform=platform8)
        # Pre-load the source configuration.
        state.record_load(0, "src", completion_time=2.0)
        decision = ReuseModule().analyze(placed, state.tiles)
        assert "src" in decision.reused
        loads = [name for name in placed.drhw_names if name != "src"]
        timed = replay_schedule(placed, LATENCY, loads)
        load_finish = {load.subtask: load.finish for load in timed.loads}
        state.apply_task_execution(placed, decision.tile_binding,
                                   decision.reused, timed.executions,
                                   load_finish)
        source_tile = state.tiles[decision.subtask_tiles["src"]]
        assert source_tile.loaded_at == pytest.approx(2.0)
        assert source_tile.use_count >= 1
