"""Unit tests for traces and the textual Gantt renderer."""

import pytest

from repro.platform.description import Platform
from repro.scheduling.evaluator import replay_schedule
from repro.scheduling.list_scheduler import build_initial_schedule
from repro.sim.trace import SimulationTrace, render_gantt
from tests.sim.test_metrics import make_record

LATENCY = 4.0


class TestSimulationTrace:
    def test_add_and_group(self):
        trace = SimulationTrace()
        trace.add(make_record(task_name="a"))
        trace.add(make_record(task_name="b"))
        trace.add(make_record(task_name="a"))
        assert len(trace) == 3
        grouped = trace.by_task()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1
        assert trace.total_overhead() == pytest.approx(6.0)

    def test_rows_and_table(self):
        trace = SimulationTrace()
        for _ in range(3):
            trace.add(make_record())
        rows = trace.to_rows()
        assert len(rows) == 3
        table = trace.format_table(limit=2)
        assert "more records" in table

    def test_format_table_unlimited(self):
        trace = SimulationTrace()
        trace.add(make_record())
        assert "more records" not in trace.format_table(limit=None)


class TestGanttRenderer:
    def test_renders_all_lanes(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        art = render_gantt(timed)
        assert "reconfig" in art
        assert "#" in art
        assert "=" in art
        assert "overhead" in art

    def test_no_loads_no_reconfig_lane_glyphs(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        timed = replay_schedule(placed, LATENCY, [])
        art = render_gantt(timed)
        assert "=" not in art

    def test_width_respected(self, chain4, platform8):
        placed = build_initial_schedule(chain4, platform8)
        timed = replay_schedule(placed, LATENCY, placed.drhw_names)
        art = render_gantt(timed, width=40)
        for line in art.splitlines()[1:]:
            assert len(line) <= 40 + 20
