"""Tests for the scalability and hide-rate experiment drivers."""

import pytest

from repro.experiments.hide_rate import (
    PAPER_MINIMUM_HIDE_RATE,
    multimedia_graphs,
    run_hide_rate,
)
from repro.experiments.scalability import run_scalability


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scalability(sizes=(7, 14, 28, 56), repetitions=3, seed=2)

    def test_rows_match_sizes(self, result):
        assert [row.subtasks for row in result.rows] == [7, 14, 28, 56]

    def test_runtime_heuristic_cost_grows_superlinearly(self, result):
        assert result.size_factor() == pytest.approx(8.0)
        assert result.growth_factor() > result.size_factor()

    def test_hybrid_runtime_cost_grows_linearly(self, result):
        first, last = result.rows[0], result.rows[-1]
        ops_growth = last.hybrid_runtime_operations / first.hybrid_runtime_operations
        assert ops_growth <= result.size_factor() + 1e-9

    def test_hybrid_runtime_is_cheaper_than_heuristic(self, result):
        for row in result.rows:
            assert row.hybrid_runtime_operations < \
                row.runtime_heuristic_operations
            assert row.hybrid_runtime_seconds <= \
                row.runtime_heuristic_seconds

    def test_design_time_cost_reported(self, result):
        assert all(row.design_time_seconds > 0 for row in result.rows)

    def test_format_table(self, result):
        table = result.format_table()
        assert "run-time heuristic" in table
        assert "hybrid" in table


class TestHideRate:
    @pytest.fixture(scope="class")
    def result(self):
        return run_hide_rate(extra_sizes=(10, 16), seed=5)

    def test_multimedia_graphs_listed(self):
        names = {graph.name for graph in multimedia_graphs()}
        assert "jpeg_decoder" in names
        assert len(names) == 6

    def test_benchmark_hide_rate_meets_paper_claim(self, result):
        """The multimedia benchmarks hide at least 75 % of their loads."""
        benchmark_rows = [row for row in result.rows
                          if not row.graph_name.startswith("scal_")]
        average = sum(row.list_hidden_fraction for row in benchmark_rows) \
            / len(benchmark_rows)
        assert average >= PAPER_MINIMUM_HIDE_RATE - 0.05

    def test_optimal_at_least_as_good_as_list(self, result):
        for row in result.rows:
            assert row.optimal_hidden_fraction >= \
                row.list_hidden_fraction - 1e-9

    def test_fractions_in_unit_interval(self, result):
        for row in result.rows:
            assert 0.0 <= row.list_hidden_fraction <= 1.0
            assert 0.0 <= row.optimal_hidden_fraction <= 1.0

    def test_format_table(self, result):
        table = result.format_table()
        assert "hidden" in table
        assert "0.75" in table
