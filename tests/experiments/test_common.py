"""Unit tests for the shared experiment helpers."""

import pytest

from repro.experiments.common import (
    Series,
    SeriesPoint,
    format_table,
    percent_error,
    series_from_mapping,
)


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(["name", "value"], [("a", 1.5), ("bbbb", 20)],
                             title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "1.50" in table
        assert "20" in table

    def test_column_alignment(self):
        table = format_table(["x"], [("short",), ("much longer value",)])
        lines = table.splitlines()
        assert len(lines[-1]) >= len("much longer value")


class TestSeries:
    def test_series_accessors(self):
        series = series_from_mapping("curve", {8: 3.0, 16: 1.0, 12: 2.0})
        assert series.xs == (8.0, 12.0, 16.0)
        assert series.ys == (3.0, 2.0, 1.0)
        assert series.value_at(12) == pytest.approx(2.0)
        assert series.maximum == pytest.approx(3.0)
        assert series.minimum == pytest.approx(1.0)

    def test_missing_x(self):
        series = Series("s", (SeriesPoint(1.0, 2.0),))
        with pytest.raises(KeyError):
            series.value_at(3.0)


class TestPercentError:
    def test_symmetric(self):
        assert percent_error(10.0, 12.0) == pytest.approx(2.0)
        assert percent_error(12.0, 10.0) == pytest.approx(2.0)
