"""Tests for the energy/load-cancellation study."""

import pytest

from repro.experiments.energy import run_energy_study

#: Simulates four approaches on a 12-tile pool: a heavyweight sweep.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return run_energy_study(tile_count=12, iterations=40, seed=3)


class TestEnergyStudy:
    def test_all_approaches_reported(self, result):
        assert {row.approach for row in result.rows} == {
            "no-prefetch", "design-time", "run-time", "hybrid",
        }

    def test_design_time_never_reuses(self, result):
        assert result.row("design-time").reuse_rate == 0.0
        assert result.row("design-time").cancelled_per_iteration == 0.0

    def test_reuse_saves_loads_and_energy(self, result):
        design_time = result.row("design-time")
        for approach in ("run-time", "hybrid"):
            row = result.row(approach)
            assert row.loads_per_iteration < design_time.loads_per_iteration
            assert row.energy_per_iteration < design_time.energy_per_iteration

    def test_hybrid_cancels_loads(self, result):
        assert result.row("hybrid").cancelled_per_iteration > 0.0

    def test_load_savings_metric(self, result):
        savings = result.load_savings_percent("hybrid")
        assert 0.0 < savings < 100.0

    def test_unknown_approach(self, result):
        with pytest.raises(KeyError):
            result.row("magic")

    def test_format(self, result):
        table = result.format_table()
        assert "energy/iteration" in table
        assert "hybrid" in table
