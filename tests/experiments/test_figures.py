"""Tests for the Figure 6 and Figure 7 experiment drivers.

These use a reduced iteration count and a reduced tile sweep so the suite
stays fast; the benchmark harness runs the full configuration.
"""

import pytest

from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import measure_critical_fraction, run_figure7
from repro.workloads.pocketgl import POCKETGL_REFERENCE

from tests.conftest import SMALL_ITERATIONS

#: Full figure sweeps are the heaviest tests of the suite.
pytestmark = pytest.mark.slow

ITERATIONS = SMALL_ITERATIONS


@pytest.fixture(scope="module")
def figure6():
    return run_figure6(tile_counts=(8, 12, 16), iterations=ITERATIONS, seed=7)


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(tile_counts=(5, 8, 10), iterations=ITERATIONS, seed=7)


class TestFigure6:
    def test_contains_three_curves(self, figure6):
        assert set(figure6.series) == {"run-time", "run-time+inter-task",
                                       "hybrid"}

    def test_approach_ordering_matches_paper(self, figure6):
        """no-prefetch >> design-time >= run-time >= hybrid (per tile count)."""
        for tiles in figure6.tile_counts:
            no_prefetch = figure6.metrics[("no-prefetch", tiles)].overhead_percent
            design_time = figure6.metrics[("design-time", tiles)].overhead_percent
            run_time = figure6.curve("run-time").value_at(tiles)
            hybrid = figure6.curve("hybrid").value_at(tiles)
            assert no_prefetch > design_time
            assert run_time <= design_time + 1.0
            assert hybrid < run_time

    def test_baseline_magnitudes(self, figure6):
        assert figure6.baselines["no-prefetch"] == pytest.approx(23.0, abs=6.0)
        assert figure6.baselines["design-time"] == pytest.approx(7.0, abs=2.0)

    def test_hybrid_hides_most_overhead(self, figure6):
        for tiles in figure6.tile_counts:
            assert figure6.hidden_fraction("hybrid", tiles) >= 0.85

    def test_hybrid_close_to_runtime_intertask(self, figure6):
        for tiles in figure6.tile_counts:
            hybrid = figure6.curve("hybrid").value_at(tiles)
            intertask = figure6.curve("run-time+inter-task").value_at(tiles)
            assert abs(hybrid - intertask) <= 1.0

    def test_overhead_decreases_with_tiles(self, figure6):
        for name in ("run-time", "hybrid"):
            ys = figure6.curve(name).ys
            assert ys[-1] <= ys[0] + 0.25

    def test_hybrid_below_paper_bound(self, figure6):
        assert figure6.curve("hybrid").maximum <= 3.0

    def test_format_table(self, figure6):
        table = figure6.format_table()
        assert "Figure 6" in table
        assert "hybrid" in table


class TestFigure7:
    def test_no_prefetch_overhead_is_large_on_small_pools(self, figure7):
        """With fewer tiles than configurations, nearly every load is paid.

        Once the pool holds every configuration (10 tiles for 10
        configurations) even the no-prefetch baseline benefits from full
        reuse, so the check only applies below that point.
        """
        for tiles in figure7.tile_counts:
            if tiles <= 8:
                assert figure7.metrics[("no-prefetch", tiles)].overhead_percent > 40.0

    def test_design_time_between_no_prefetch_and_hybrid(self, figure7):
        for tiles in figure7.tile_counts:
            no_prefetch = figure7.metrics[("no-prefetch", tiles)].overhead_percent
            design_time = figure7.metrics[("design-time", tiles)].overhead_percent
            hybrid = figure7.curve("hybrid").value_at(tiles)
            assert hybrid < design_time
            if tiles <= 8:
                assert design_time < no_prefetch

    def test_hybrid_small_at_eight_tiles(self, figure7):
        assert figure7.curve("hybrid").value_at(8) <= 5.0

    def test_hybrid_hides_at_least_90_percent_at_eight_tiles(self, figure7):
        assert figure7.hidden_fraction("hybrid", 8) >= 0.90

    def test_overhead_decreases_with_tiles(self, figure7):
        for name in ("run-time", "hybrid", "run-time+inter-task"):
            series = figure7.curve(name)
            assert series.value_at(10) <= series.value_at(5) + 0.5

    def test_critical_fraction_close_to_paper(self, figure7):
        assert figure7.critical_fraction == pytest.approx(
            POCKETGL_REFERENCE["critical_fraction"], abs=0.1
        )

    def test_format_table(self, figure7):
        table = figure7.format_table()
        assert "Figure 7" in table
        assert "critical" in table


class TestCriticalFractionHelper:
    def test_standalone_measurement(self):
        fraction = measure_critical_fraction(tile_count=8)
        assert 0.4 <= fraction <= 0.8

    def test_precomputed_exploration_matches_fresh(self):
        """Passing a shared exploration skips re-exploring, same number."""
        from repro.runner import WorkloadSpec, explore_platform

        _, _, design = explore_platform(WorkloadSpec.of("pocketgl"), 8)
        shared = measure_critical_fraction(tile_count=8, design_result=design)
        assert shared == measure_critical_fraction(tile_count=8)
