"""Tests for the reconfiguration-latency sweep."""

import pytest

from repro.experiments.latency_sweep import run_latency_sweep

#: Simulates three latencies x three approaches: a heavyweight sweep.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return run_latency_sweep(latencies=(0.5, 4.0, 8.0), iterations=30, seed=3)


class TestLatencySweep:
    def test_rows_match_latencies(self, result):
        assert [row.latency_ms for row in result.rows] == [0.5, 4.0, 8.0]

    def test_overhead_grows_with_latency(self, result):
        for metric in ("no_prefetch_percent", "run_time_percent",
                       "hybrid_percent"):
            values = [getattr(row, metric) for row in result.rows]
            assert values[0] <= values[-1] + 1e-9

    def test_critical_fraction_grows_with_latency(self, result):
        fractions = [row.critical_fraction for row in result.rows]
        assert fractions[0] <= fractions[-1] + 1e-9
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)

    def test_hybrid_always_best(self, result):
        for row in result.rows:
            assert row.hybrid_percent <= row.no_prefetch_percent + 1e-9
            assert row.hybrid_percent <= row.run_time_percent + 1e-9

    def test_row_lookup(self, result):
        assert result.row(4.0).latency_ms == 4.0
        with pytest.raises(KeyError):
            result.row(3.0)

    def test_format(self, result):
        table = result.format_table()
        assert "latency" in table
        assert "hybrid" in table
