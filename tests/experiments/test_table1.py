"""Tests for the Table 1 experiment driver."""

import pytest

from repro.experiments.table1 import Table1Result, run_table1
from repro.workloads.multimedia import TABLE1_REFERENCE


@pytest.fixture(scope="module")
def result() -> Table1Result:
    return run_table1()


class TestTable1:
    def test_all_four_benchmarks_present(self, result):
        assert {row.task_name for row in result.rows} == set(TABLE1_REFERENCE)

    def test_subtask_counts_match_paper(self, result):
        for row in result.rows:
            assert row.subtasks == row.reference.subtasks

    def test_ideal_times_match_paper(self, result):
        for row in result.rows:
            assert row.ideal_time_ms == pytest.approx(
                row.reference.ideal_time_ms, rel=0.08
            )

    def test_no_prefetch_overheads_close_to_paper(self, result):
        for row in result.rows:
            assert row.overhead_error <= 8.0, (
                f"{row.task_name}: measured {row.overhead_percent:.1f}% vs "
                f"paper {row.reference.overhead_percent:.1f}%"
            )

    def test_prefetch_overheads_close_to_paper(self, result):
        for row in result.rows:
            assert row.prefetch_error <= 4.0

    def test_prefetch_always_reduces_overhead(self, result):
        for row in result.rows:
            assert row.prefetch_percent < row.overhead_percent

    def test_ranking_matches_paper(self, result):
        """The relative ordering of the no-prefetch overheads must match."""
        measured = sorted(result.rows, key=lambda r: r.overhead_percent)
        published = sorted(result.rows,
                           key=lambda r: r.reference.overhead_percent)
        assert [r.task_name for r in measured] == \
            [r.task_name for r in published]

    def test_row_lookup_and_formatting(self, result):
        row = result.row("jpeg_decoder")
        assert row.subtasks == 4
        with pytest.raises(KeyError):
            result.row("ghost")
        table = result.format_table()
        assert "jpeg_decoder" in table
        assert "paper overhead" in table
