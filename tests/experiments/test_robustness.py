"""Tests for the robustness study driver (repro.experiments.robustness)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.robustness import (
    DEFAULT_APPROACHES,
    DEFAULT_NOISE_LEVELS,
    DEFAULT_SEEDS,
    noise_profile,
    run_robustness,
)


class TestNoiseProfile:
    def test_zero_is_the_noise_free_run(self):
        assert noise_profile(0.0) is None

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_profile(-0.1)

    def test_scales_every_source(self):
        mild = noise_profile(0.2)
        harsh = noise_profile(1.0)
        assert 0 < mild.latency_sigma < harsh.latency_sigma
        assert 0 < mild.execution_sigma < harsh.execution_sigma
        assert 0 < mild.load_failure_rate < harsh.load_failure_rate

    def test_failure_rate_is_capped(self):
        assert noise_profile(10.0).load_failure_rate <= 0.9

    def test_defaults_meet_the_acceptance_grid(self):
        """>= 3 approaches x >= 4 noise levels x >= 5 seeds by default."""
        assert len(DEFAULT_APPROACHES) >= 3
        assert len(DEFAULT_NOISE_LEVELS) >= 4
        assert len(DEFAULT_SEEDS) >= 5
        assert 0.0 in DEFAULT_NOISE_LEVELS


class TestRunRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness(
            workload="synthetic", tile_count=6,
            levels=(0.0, 0.4), approaches=("design-time", "adaptive"),
            seeds=(1, 2, 3), iterations=10,
        )

    def test_grid_shape(self, result):
        assert result.levels == (0.0, 0.4)
        assert set(result.approaches) == {"design-time", "adaptive"}
        assert len(result.cells) == 4
        for cell in result.cells:
            assert cell.overhead.count == 3

    def test_zero_level_has_no_stochastic_work(self, result):
        for name in result.approaches:
            cell = result.cell(name, 0.0)
            assert cell.loads_failed.mean == 0.0
            assert cell.prefetches_abandoned.mean == 0.0

    def test_noise_level_injects_failures(self, result):
        assert result.cell("design-time", 0.4).loads_failed.mean > 0.0

    def test_curve_and_degradation(self, result):
        curve = result.curve("adaptive")
        assert list(curve) == [0.0, 0.4]
        assert result.degradation("adaptive") \
            == pytest.approx(curve[0.4].mean - curve[0.0].mean)

    def test_adaptive_degrades_no_worse_than_design_time(self, result):
        top = max(result.levels)
        assert result.cell("adaptive", top).overhead.mean \
            <= result.cell("design-time", top).overhead.mean + 1e-9

    def test_format_table(self, result):
        text = result.format_table()
        assert "overhead (%)" in text
        assert "design-time" in text and "adaptive" in text
        assert "intensity 0 is the noise-free simulator" in text

    def test_unknown_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("design-time", 0.9)
        with pytest.raises(KeyError):
            result.degradation("hybrid")

    def test_empty_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            run_robustness(levels=())
