"""Tests for the ablation studies."""

import pytest

from repro.core.critical import PICK_STRATEGIES
from repro.experiments.ablation import (
    run_engine_ablation,
    run_intertask_ablation,
    run_pick_metric_ablation,
    run_replacement_ablation,
)

ITERATIONS = 40


class TestPickMetricAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pick_metric_ablation()

    def test_all_strategies_evaluated(self, result):
        for row in result.rows:
            assert set(row.critical_by_strategy) == set(PICK_STRATEGIES)

    def test_max_weight_is_competitive(self, result):
        """The paper's pick never needs more critical subtasks in total."""
        totals = {strategy: result.total(strategy)
                  for strategy in PICK_STRATEGIES}
        assert totals["max-weight"] <= min(totals.values()) + 1

    def test_format(self, result):
        assert "max-weight" in result.format_table()


class TestInterTaskAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_intertask_ablation(iterations=ITERATIONS, seed=3)

    def test_intertask_never_hurts(self, result):
        assert result.overhead_with_intertask <= \
            result.overhead_without_intertask + 1e-9

    def test_intertask_brings_meaningful_gain(self, result):
        assert result.improvement_percent_points > 0.5

    def test_format(self, result):
        assert "inter-task" in result.format_table()


class TestReplacementAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_replacement_ablation(iterations=ITERATIONS, seed=3)

    def test_all_policies_reported(self, result):
        assert set(result.overhead_by_policy) == {
            "lru", "lfu", "fifo", "randomlike", "weight-aware"
        }

    def test_reuse_rates_in_unit_interval(self, result):
        for value in result.reuse_by_policy.values():
            assert 0.0 <= value <= 1.0

    def test_overheads_positive_and_small(self, result):
        for value in result.overhead_by_policy.values():
            assert 0.0 <= value < 25.0

    def test_format(self, result):
        assert "lru" in result.format_table()


class TestEngineAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_engine_ablation()

    def test_heuristic_never_beats_optimal(self, result):
        for row in result.rows:
            assert row.optimality_gap_percent_points >= -1e-9

    def test_gap_is_small_on_benchmarks(self, result):
        assert result.maximum_gap <= 5.0

    def test_critical_counts_reported(self, result):
        for row in result.rows:
            assert row.optimal_critical >= 1
            assert row.heuristic_critical >= 1

    def test_format(self, result):
        assert "B&B" in result.format_table()
