"""Tests for ``ResultCache.gc`` — byte budgets, debris sweeps, reports.

The gc contract: with no budget it only removes *debris* (expired claims,
leaked takeover tombstones, crashed-writer temp files); with a budget it
additionally evicts memoized entries least-recently-modified first until
the retained size fits; and eviction is always safe because every evicted
entry re-persists bit-identically on the next run.
"""

import os
import time

import pytest

from repro.jsonio import TEMP_PREFIX
from repro.runner import ClaimDirectory, ExplorationCache, ResultCache
from repro.runner.cache import DEFAULT_TEMP_AGE
from repro.runner.claims import DEFAULT_CLAIM_TTL
from tests.runner.test_cache import make_metrics, make_point


def backdate(path, age):
    stale = time.time() - age
    os.utime(path, (stale, stale))


def populate_results(directory, count):
    """Store ``count`` distinct results; returns their paths oldest-first."""
    cache = ResultCache(directory)
    paths = []
    for index in range(count):
        point = make_point(seed=index)
        cache.store(point, make_metrics())
        paths.append(cache.path_for(point))
    # Stamp a strictly increasing mtime sequence so LRU order is exact.
    for rank, path in enumerate(paths):
        backdate(path, (count - rank) * 100.0)
    return paths


class TestGcWithoutBudget:
    def test_noop_on_fresh_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        report = cache.gc()
        assert report.freed_files == 0
        assert report.freed_bytes == 0
        assert report.stores["results"].files == 1
        assert len(cache) == 1

    def test_debris_is_swept_and_fresh_claims_kept(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        claims = ClaimDirectory(tmp_path / "claims", worker_id="w1")
        assert claims.acquire("fresh-group")
        assert claims.acquire("dead-group")
        backdate(claims.path_for("dead-group"), DEFAULT_CLAIM_TTL * 2)
        tombstone = tmp_path / "claims" / ".stale-dead-w0-1"
        tombstone.write_text("{}")
        backdate(tombstone, DEFAULT_CLAIM_TTL * 2)
        temp = tmp_path / f"{TEMP_PREFIX}crashed"
        temp.write_text("partial")
        backdate(temp, DEFAULT_TEMP_AGE * 2)

        report = cache.gc()
        assert report.stores["claims"].removed_files == 1
        assert report.stores["tombstones"].removed_files == 1
        assert report.stores["temp"].removed_files == 1
        assert claims.path_for("fresh-group").exists()
        assert not claims.path_for("dead-group").exists()
        assert not tombstone.exists()
        assert not temp.exists()
        assert len(cache) == 1  # results untouched without a budget

    def test_fresh_temp_files_survive(self, tmp_path):
        cache = ResultCache(tmp_path)
        temp = tmp_path / f"{TEMP_PREFIX}inflight"
        temp.write_text("partial")
        report = cache.gc()
        assert report.stores["temp"].removed_files == 0
        assert temp.exists()

    def test_claim_ttl_override_widens_the_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        claims = ClaimDirectory(tmp_path / "claims", worker_id="w1")
        assert claims.acquire("group")
        backdate(claims.path_for("group"), 30.0)
        assert cache.gc().stores["claims"].removed_files == 0
        assert cache.gc(claim_ttl=10.0).stores["claims"].removed_files == 1


class TestGcWithBudget:
    def test_evicts_oldest_first_until_under_budget(self, tmp_path):
        paths = populate_results(tmp_path, 4)
        per_file = paths[0].stat().st_size
        cache = ResultCache(tmp_path)
        report = cache.gc(max_bytes=2 * per_file)
        assert report.stores["results"].removed_files == 2
        assert report.retained_bytes <= 2 * per_file
        # Oldest two gone, newest two kept.
        assert [p.exists() for p in paths] == [False, False, True, True]

    def test_budget_zero_clears_every_memoized_store(self, tmp_path):
        populate_results(tmp_path, 3)
        report = ResultCache(tmp_path).gc(max_bytes=0)
        assert report.retained_bytes == 0
        assert report.stores["results"].removed_files == 3

    def test_generous_budget_evicts_nothing(self, tmp_path):
        populate_results(tmp_path, 3)
        report = ResultCache(tmp_path).gc(max_bytes=10**9)
        assert report.freed_files == 0

    def test_explorations_count_toward_the_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        # A fake-but-well-placed exploration entry: gc only needs its
        # size and mtime, not a loadable payload.
        explorations = ExplorationCache(tmp_path / "explorations")
        entry = explorations.path_for(make_point().workload, 8)
        entry.write_text("x" * 10_000)
        backdate(entry, 500.0)
        report = cache.gc(max_bytes=100)
        assert report.stores["explorations"].removed_files == 1
        assert not entry.exists()
        assert len(cache) <= 1

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).gc(max_bytes=-1)

    def test_eviction_preserves_bit_identical_restore(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        path = cache.store(point, make_metrics())
        original = path.read_bytes()
        assert ResultCache(tmp_path).gc(max_bytes=0).retained_bytes == 0
        assert cache.load(point) is None
        cache.store(point, make_metrics())
        assert path.read_bytes() == original


class TestTempSweepPerBackend:
    """The claims backend backs two store labels (claims + tombstones);
    its temp debris must still be swept — and counted — exactly once."""

    def test_claims_temp_debris_counted_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "claims").mkdir()
        temp = tmp_path / "claims" / f"{TEMP_PREFIX}crashed"
        temp.write_text("partial")
        backdate(temp, DEFAULT_TEMP_AGE * 2)

        preview = ResultCache(tmp_path).gc(dry_run=True)
        assert preview.stores["temp"].files == 1
        assert preview.stores["temp"].removed_files == 1

        real = ResultCache(tmp_path).gc()
        assert real.stores["temp"].files == 1
        assert real.stores["temp"].removed_files == 1
        assert real.stores["temp"].removed_bytes == preview.stores[
            "temp"].removed_bytes
        assert not temp.exists()

    def test_fresh_claims_temp_file_counted_once_and_kept(self, tmp_path):
        (tmp_path / "claims").mkdir()
        temp = tmp_path / "claims" / f"{TEMP_PREFIX}inflight"
        temp.write_text("partial")
        report = ResultCache(tmp_path).gc()
        assert report.stores["temp"].files == 1
        assert report.stores["temp"].removed_files == 0
        assert temp.exists()


class TestEvictionRestatsBeforeDelete:
    """Pass-2 LRU eviction must not trust pass-1 stats: an entry whose
    mtime was refreshed by a concurrent warm hit between the inventory
    and the delete is no longer the cold entry pass 1 saw."""

    def test_touched_entry_survives_eviction(self, tmp_path, monkeypatch):
        import repro.runner.cache as cache_mod

        paths = populate_results(tmp_path, 4)
        real_list_entries = cache_mod.list_entries

        def listing_then_touch(backend, pattern):
            entries = real_list_entries(backend, pattern)
            if pattern == "*.json" and paths[0].exists():
                # A concurrent warm hit refreshes the oldest entry right
                # after the inventory pass statted it.
                os.utime(paths[0])
            return entries

        monkeypatch.setattr(cache_mod, "list_entries", listing_then_touch)
        report = ResultCache(tmp_path).gc(max_bytes=0)
        assert paths[0].exists(), "refreshed entry evicted off a stale stat"
        assert not paths[1].exists()
        assert not paths[2].exists()
        assert report.stores["results"].removed_files == 3

    def test_vanished_entry_is_skipped_not_counted(self, tmp_path,
                                                   monkeypatch):
        import repro.runner.cache as cache_mod

        paths = populate_results(tmp_path, 3)
        real_list_entries = cache_mod.list_entries

        def listing_then_unlink(backend, pattern):
            entries = real_list_entries(backend, pattern)
            if pattern == "*.json" and paths[0].exists():
                paths[0].unlink()  # another worker's gc got there first
            return entries

        monkeypatch.setattr(cache_mod, "list_entries", listing_then_unlink)
        # dry_run pins the *accounting*: a vanished entry must not be
        # reported as freeable (the wet pass would fail its delete anyway).
        report = ResultCache(tmp_path).gc(max_bytes=0, dry_run=True)
        assert report.stores["results"].removed_files == 2


class TestGcDryRunAndReport:
    def test_dry_run_reports_without_deleting(self, tmp_path):
        paths = populate_results(tmp_path, 3)
        report = ResultCache(tmp_path).gc(max_bytes=0, dry_run=True)
        assert report.freed_files == 3
        assert all(path.exists() for path in paths)
        # A dry run's accounting matches what the real pass then does.
        real = ResultCache(tmp_path).gc(max_bytes=0)
        assert real.freed_files == report.freed_files
        assert real.freed_bytes == report.freed_bytes

    def test_format_table_mentions_every_store(self, tmp_path):
        populate_results(tmp_path, 2)
        report = ResultCache(tmp_path).gc(max_bytes=0, dry_run=True)
        table = report.format_table()
        assert "results" in table
        assert "would free" in table
        assert "budget: 0 bytes" in table
        assert "(dry run)" in table
        wet = ResultCache(tmp_path).gc()
        assert "freed" in wet.format_table()
        assert "budget: none" in wet.format_table()
