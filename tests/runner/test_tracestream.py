"""Tests for streaming trace records through the sweep engine."""

import pytest

from repro.runner import (
    SweepEngine,
    TraceStreamConfig,
    run_trace_stream,
    run_trace_stream_via_service,
    trace_points,
    trace_sweep_spec,
)
from repro.runner.tracestream import point_for_record
from repro.workloads.traces import (
    MixedPatternConfig,
    TraceRecord,
    generate_mixed_trace,
)

CONFIG = TraceStreamConfig(iterations=3, tile_count=4, subtasks=4)


def small_records():
    return [
        TraceRecord(timestamp=0.0, graph_id=0),
        TraceRecord(timestamp=1.0, graph_id=1, tenant="t1"),
        TraceRecord(timestamp=2.0, graph_id=0),
        TraceRecord(timestamp=3.0, graph_id=1, tenant="t1"),
        TraceRecord(timestamp=4.0, graph_id=2),
    ]


class TestPoints:
    def test_one_point_per_record_in_arrival_order(self):
        points = trace_points(small_records(), CONFIG)
        assert len(points) == 5
        assert [dict(p.workload.options)["graph_id"] for p in points] == \
            [0, 1, 0, 1, 2]

    def test_repeats_map_to_identical_points(self):
        points = trace_points(small_records(), CONFIG)
        assert points[0] == points[2]
        assert points[1] == points[3]

    def test_record_size_overrides_stream_default(self):
        record = TraceRecord(timestamp=0.0, graph_id=9, size=7)
        point = point_for_record(record, CONFIG)
        assert dict(point.workload.options)["subtasks"] == 7

    def test_sweep_spec_deduplicates(self):
        spec = trace_sweep_spec(small_records(), CONFIG)
        assert len(spec.workloads) == 3
        assert [dict(w.options)["graph_id"] for w in spec.workloads] == \
            [0, 1, 2]


class TestEngineStream:
    def test_stream_reports_every_arrival(self):
        result = run_trace_stream(small_records(), CONFIG)
        assert len(result.metrics) == 5
        assert result.stats.records == 5
        assert result.stats.distinct_graphs == 3
        assert result.stats.tenants == 2
        assert result.stats.stream_warm_arrivals == 2
        assert result.stats.warm_arrival_rate == pytest.approx(0.4)

    def test_repeated_arrivals_get_identical_metrics(self):
        result = run_trace_stream(small_records(), CONFIG)
        assert result.metrics[0] == result.metrics[2]
        assert result.metrics[1] == result.metrics[3]
        assert result.metrics[0] != result.metrics[4]

    def test_stream_is_deterministic(self):
        records = generate_mixed_trace(
            MixedPatternConfig(records=12, universe=4, seed=3, tenants=2))
        first = run_trace_stream(records, CONFIG)
        second = run_trace_stream(records, CONFIG)
        assert first.metrics == second.metrics

    def test_warm_stats_captured_in_process(self):
        result = run_trace_stream(small_records(), CONFIG,
                                  engine=SweepEngine(max_workers=1))
        assert "pool_hits" in result.stats.warm
        assert result.stats.warm["pool_hits"] >= 0

    def test_result_cache_turns_arrivals_cached(self, tmp_path):
        engine = SweepEngine(cache_dir=str(tmp_path))
        cold = run_trace_stream(small_records(), CONFIG, engine=engine)
        assert cold.stats.cached == 0
        warm = run_trace_stream(
            small_records(), CONFIG,
            engine=SweepEngine(cache_dir=str(tmp_path)))
        assert warm.stats.cached == 5
        assert warm.metrics == cold.metrics

    def test_service_transport_requires_client(self):
        with pytest.raises(TypeError, match="ServiceClient"):
            run_trace_stream_via_service(small_records(), CONFIG)
