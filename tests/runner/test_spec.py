"""Tests for the declarative sweep specifications and their cache keys."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import ApproachSpec, SweepPoint, SweepSpec, WorkloadSpec
from repro.runner.spec import workload_spec_for
from repro.sim import PerturbationConfig
from repro.workloads.multimedia import MultimediaWorkload
from repro.workloads.pocketgl import PocketGLWorkload
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload


def make_point(**overrides) -> SweepPoint:
    """A baseline point; keyword overrides patch individual fields."""
    fields = dict(
        workload=WorkloadSpec.of("multimedia"),
        approach=ApproachSpec.of("hybrid"),
        tile_count=8,
        seed=2005,
        iterations=100,
    )
    fields.update(overrides)
    return SweepPoint(**fields)


class TestWorkloadSpec:
    def test_accepts_name(self):
        spec = WorkloadSpec.of("multimedia")
        assert spec.name == "multimedia"
        assert spec.build().name == "multimedia"

    def test_options_reach_the_constructor(self):
        spec = WorkloadSpec.of("multimedia", reconfiguration_latency=2.0)
        assert spec.build().reconfiguration_latency == 2.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.of("quake")

    def test_non_scalar_option_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.of("multimedia", reconfiguration_latency=[4.0])

    def test_option_order_does_not_matter(self):
        first = WorkloadSpec.of("synthetic", task_count=2, seed=5)
        second = WorkloadSpec.of("synthetic", seed=5, task_count=2)
        assert first == second

    def test_label(self):
        assert WorkloadSpec.of("multimedia").label == "multimedia"
        assert "reconfiguration_latency=2.0" in \
            WorkloadSpec.of("multimedia", reconfiguration_latency=2.0).label


class TestWorkloadSpecFor:
    def test_multimedia_round_trip(self):
        workload = MultimediaWorkload(reconfiguration_latency=2.5)
        spec = workload_spec_for(workload)
        rebuilt = spec.build()
        assert rebuilt.reconfiguration_latency == 2.5
        assert rebuilt.min_tasks_per_iteration == \
            workload.min_tasks_per_iteration

    def test_pocketgl_round_trip(self):
        workload = PocketGLWorkload(inter_task_scenarios=10)
        rebuilt = workload_spec_for(workload).build()
        assert rebuilt.inter_task_scenarios == workload.inter_task_scenarios

    def test_synthetic_round_trip(self):
        workload = SyntheticWorkload(spec=SyntheticSpec(task_count=2,
                                                        subtasks_per_task=5))
        rebuilt = workload_spec_for(workload).build()
        assert rebuilt.spec == workload.spec

    def test_subclass_is_not_representable(self):
        class Custom(MultimediaWorkload):
            pass

        assert workload_spec_for(Custom()) is None


class TestApproachSpec:
    def test_accepts_name(self):
        spec = ApproachSpec.of("run-time")
        assert spec.build().name == "run-time"

    def test_options_reach_the_constructor(self):
        spec = ApproachSpec.of("hybrid", use_intertask=False)
        assert spec.build().uses_intertask is False

    def test_replacement_builds_policy(self):
        spec = ApproachSpec.of("hybrid", replacement="fifo")
        assert spec.build_replacement().name == "fifo"
        assert ApproachSpec.of("hybrid").build_replacement() is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproachSpec.of("oracle")

    def test_labels_distinguish_variants(self):
        labels = {
            ApproachSpec.of("hybrid").label,
            ApproachSpec.of("hybrid", use_intertask=False).label,
            ApproachSpec.of("hybrid", replacement="fifo").label,
        }
        assert len(labels) == 3


class TestSweepSpec:
    def test_names_are_normalized_to_specs(self):
        spec = SweepSpec(workloads=("multimedia",),
                         approaches=("hybrid", "run-time"),
                         tile_counts=(8,))
        assert all(isinstance(w, WorkloadSpec) for w in spec.workloads)
        assert all(isinstance(a, ApproachSpec) for a in spec.approaches)

    def test_duplicate_axis_entries_are_deduplicated(self):
        """Repeated seeds/tile counts no longer inflate the executed grid.

        A duplicated entry used to double ``point_count`` and run the same
        point twice (the engine deduplicated execution, but every report
        listed the point twice); axes are now deduplicated preserving
        first-seen order.
        """
        spec = SweepSpec(
            workloads=("multimedia", "multimedia"),
            approaches=("hybrid", "run-time", "hybrid"),
            tile_counts=(8, 4, 8, 4),
            seeds=(3, 1, 3, 2, 1),
        )
        assert spec.tile_counts == (8, 4)
        assert spec.seeds == (3, 1, 2)
        assert [w.name for w in spec.workloads] == ["multimedia"]
        assert [a.name for a in spec.approaches] == ["hybrid", "run-time"]
        points = spec.expand()
        assert len(points) == spec.point_count == 1 * 2 * 2 * 3
        assert len(set(points)) == len(points)

    def test_expansion_is_the_full_cross_product(self):
        spec = SweepSpec(workloads=("multimedia", "pocketgl"),
                         approaches=("hybrid", "run-time", "no-prefetch"),
                         tile_counts=(8, 10), seeds=(1, 2), iterations=50)
        points = spec.expand()
        assert len(points) == spec.point_count == 2 * 3 * 2 * 2
        assert len(set(points)) == len(points)

    def test_expansion_order_is_deterministic(self):
        spec = SweepSpec(workloads=("multimedia",),
                         approaches=("hybrid", "run-time"),
                         tile_counts=(8, 10), seeds=(1, 2))
        assert spec.expand() == spec.expand()
        first = spec.expand()[0]
        assert (first.approach.name, first.tile_count, first.seed) == \
            ("hybrid", 8, 1)

    def test_config_fields_propagate(self):
        spec = SweepSpec(workloads=("multimedia",), approaches=("hybrid",),
                         tile_counts=(8,), iterations=70,
                         configuration_fault_rate=0.25)
        config = spec.expand()[0].config()
        assert config.iterations == 70
        assert config.configuration_fault_rate == 0.25

    @pytest.mark.parametrize("kwargs", [
        dict(workloads=(), approaches=("hybrid",), tile_counts=(8,)),
        dict(workloads=("multimedia",), approaches=(), tile_counts=(8,)),
        dict(workloads=("multimedia",), approaches=("hybrid",),
             tile_counts=()),
        dict(workloads=("multimedia",), approaches=("hybrid",),
             tile_counts=(8,), seeds=()),
        dict(workloads=("multimedia",), approaches=("hybrid",),
             tile_counts=(0,)),
        dict(workloads=("multimedia",), approaches=("hybrid",),
             tile_counts=(8,), iterations=0),
        dict(workloads=("multimedia",), approaches=("hybrid",),
             tile_counts=(8,), configuration_fault_rate=2.0),
    ])
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SweepSpec(**kwargs)


class TestPerturbationAxis:
    NOISE = PerturbationConfig(latency_sigma=0.2, load_failure_rate=0.1)

    def test_null_config_normalizes_to_none_on_points(self):
        point = make_point(perturbation=PerturbationConfig())
        assert point.perturbation is None
        assert point == make_point()

    def test_point_config_carries_the_perturbation(self):
        point = make_point(perturbation=self.NOISE)
        assert point.config().perturbation == self.NOISE

    def test_noise_changes_the_cache_key(self):
        assert make_point(perturbation=self.NOISE).cache_key() \
            != make_point().cache_key()
        assert "noise[" in make_point(perturbation=self.NOISE).label

    def test_noise_free_payload_is_unchanged(self):
        """Old cache entries stay valid: no ``perturbation`` key when off."""
        assert "perturbation" not in make_point().payload()
        assert "perturbation" in make_point(perturbation=self.NOISE).payload()

    def test_spec_null_entries_fold_and_deduplicate(self):
        spec = SweepSpec(
            workloads=("multimedia",), approaches=("hybrid",),
            tile_counts=(8,),
            perturbations=(None, PerturbationConfig(), self.NOISE, self.NOISE),
        )
        assert spec.perturbations == (None, self.NOISE)
        assert spec.point_count == 2
        assert [p.perturbation for p in spec.expand()] == [None, self.NOISE]

    def test_expansion_varies_perturbation_before_seed(self):
        spec = SweepSpec(
            workloads=("multimedia",), approaches=("hybrid",),
            tile_counts=(8,), seeds=(1, 2),
            perturbations=(None, self.NOISE),
        )
        points = spec.expand()
        assert [(p.perturbation, p.seed) for p in points] == [
            (None, 1), (None, 2), (self.NOISE, 1), (self.NOISE, 2),
        ]

    @pytest.mark.parametrize("perturbations", [
        (), ("noisy",), (0.3,),
    ])
    def test_invalid_perturbation_axis_rejected(self, perturbations):
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=("multimedia",), approaches=("hybrid",),
                      tile_counts=(8,), perturbations=perturbations)


class TestCacheKey:
    def test_key_is_stable(self):
        assert make_point().cache_key() == make_point().cache_key()

    @pytest.mark.parametrize("overrides", [
        dict(workload=WorkloadSpec.of("pocketgl")),
        dict(workload=WorkloadSpec.of("multimedia",
                                      reconfiguration_latency=2.0)),
        dict(approach=ApproachSpec.of("run-time")),
        dict(approach=ApproachSpec.of("hybrid", use_intertask=False)),
        dict(approach=ApproachSpec.of("hybrid", replacement="fifo")),
        dict(tile_count=9),
        dict(seed=2006),
        dict(iterations=101),
        dict(configuration_fault_rate=0.1),
        dict(keep_state_between_iterations=False),
        dict(point_selection="deadline", deadline=100.0),
    ])
    def test_key_changes_with_every_ingredient(self, overrides):
        assert make_point(**overrides).cache_key() != make_point().cache_key()

    def test_group_key_ignores_approach_and_seed(self):
        base = make_point()
        assert make_point(approach=ApproachSpec.of("run-time"),
                          seed=1).group_key == base.group_key
        assert make_point(tile_count=9).group_key != base.group_key
