"""Tests for the on-disk TCM design-time exploration cache."""

import json

import pytest

from repro.platform.description import Platform
from repro.runner import ExplorationCache, WorkloadSpec
from repro.runner.engine import explore_platform
from repro.tcm.design_time import (
    TcmDesignTimeScheduler,
    exploration_from_dict,
    exploration_to_dict,
)
from repro.workloads.multimedia import MultimediaWorkload


@pytest.fixture(scope="module")
def workload_spec() -> WorkloadSpec:
    return WorkloadSpec.of(
        "multimedia",
        reconfiguration_latency=MultimediaWorkload().reconfiguration_latency,
    )


def explore(workload_spec: WorkloadSpec, tiles: int = 4):
    workload = workload_spec.build()
    platform = Platform(
        tile_count=tiles,
        reconfiguration_latency=workload.reconfiguration_latency,
    )
    return platform, TcmDesignTimeScheduler(platform).explore(
        workload.task_set
    )


def assert_same_exploration(left, right) -> None:
    assert set(left.curves) == set(right.curves)
    for key, curve in left.curves.items():
        other = right.curves[key]
        assert [p.key for p in curve] == [p.key for p in other]
        for mine, theirs in zip(curve, other):
            assert mine.execution_time == theirs.execution_time
            assert mine.energy == theirs.energy
            assert mine.tile_count == theirs.tile_count
            assert mine.placed.placements == theirs.placed.placements


class TestExplorationSerialization:
    def test_round_trip_is_exact(self, workload_spec):
        platform, result = explore(workload_spec)
        payload = json.loads(json.dumps(exploration_to_dict(result)))
        rebuilt = exploration_from_dict(payload, platform)
        assert_same_exploration(result, rebuilt)


class TestExplorationCache:
    def test_miss_then_hit(self, tmp_path, workload_spec):
        platform, result = explore(workload_spec)
        cache = ExplorationCache(tmp_path)
        assert cache.load(workload_spec, 4, platform) is None
        path = cache.store(workload_spec, 4, result)
        assert path.exists()
        loaded = cache.load(workload_spec, 4, platform)
        assert loaded is not None
        assert_same_exploration(result, loaded)

    def test_different_request_misses(self, tmp_path, workload_spec):
        platform, result = explore(workload_spec)
        cache = ExplorationCache(tmp_path)
        cache.store(workload_spec, 4, result)
        assert cache.load(workload_spec, 5, platform) is None
        other = WorkloadSpec.of("multimedia")
        assert cache.load(other, 4, platform) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, workload_spec):
        platform, result = explore(workload_spec)
        cache = ExplorationCache(tmp_path)
        path = cache.store(workload_spec, 4, result)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.load(workload_spec, 4, platform) is None
        # Truncated-but-valid JSON with a matching request is also rejected
        # (the schedules fail to rebuild).
        entry = {"request": cache._payload(workload_spec, 4),
                 "exploration": {"curves": [{"task": "x"}]}}
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(workload_spec, 4, platform) is None

    def test_tampered_payload_is_a_miss(self, tmp_path, workload_spec):
        platform, result = explore(workload_spec)
        cache = ExplorationCache(tmp_path)
        path = cache.store(workload_spec, 4, result)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["request"]["tile_count"] = 999
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(workload_spec, 4, platform) is None


class TestResultCacheClearsExplorations:
    def test_clear_removes_nested_exploration_entries(self, tmp_path,
                                                      workload_spec):
        from repro.runner import ResultCache

        platform, result = explore(workload_spec)
        result_cache = ResultCache(tmp_path)
        exploration_cache = ExplorationCache(tmp_path / "explorations")
        exploration_cache.store(workload_spec, 4, result)
        assert exploration_cache.load(workload_spec, 4, platform) is not None
        removed = result_cache.clear()
        assert removed == 1
        assert exploration_cache.load(workload_spec, 4, platform) is None


class TestExplorePlatformMemoization:
    def test_warm_call_skips_exploration(self, tmp_path, workload_spec,
                                         monkeypatch):
        directory = str(tmp_path / "explorations")
        workload, platform, first = explore_platform(workload_spec, 4,
                                                     directory)
        calls = []
        original = TcmDesignTimeScheduler.explore

        def counting(self, task_set):
            calls.append(1)
            return original(self, task_set)

        monkeypatch.setattr(TcmDesignTimeScheduler, "explore", counting)
        _, _, second = explore_platform(workload_spec, 4, directory)
        assert calls == []
        assert_same_exploration(first, second)

    def test_without_directory_explores_fresh(self, workload_spec,
                                              monkeypatch):
        calls = []
        original = TcmDesignTimeScheduler.explore

        def counting(self, task_set):
            calls.append(1)
            return original(self, task_set)

        monkeypatch.setattr(TcmDesignTimeScheduler, "explore", counting)
        explore_platform(workload_spec, 2)
        assert calls == [1]

    def test_cached_exploration_yields_identical_metrics(self, tmp_path,
                                                         workload_spec):
        """Simulating on a disk-loaded exploration is bit-identical."""
        from repro.runner import ApproachSpec, SweepEngine, SweepSpec

        spec = SweepSpec(workloads=(workload_spec,),
                         approaches=(ApproachSpec("run-time"),),
                         tile_counts=(4,), seeds=(1,), iterations=5)
        cached_engine = SweepEngine(cache_dir=tmp_path / "cache")
        cold = cached_engine.run(spec)
        # Second run with a *different seed* reuses the stored exploration
        # but must recompute (and match) the simulation bit for bit.
        spec2 = SweepSpec(workloads=(workload_spec,),
                          approaches=(ApproachSpec("run-time"),),
                          tile_counts=(4,), seeds=(2,), iterations=5)
        warm = SweepEngine(cache_dir=tmp_path / "cache").run(spec2)
        fresh = SweepEngine().run(spec2)
        assert warm.outcomes[0].metrics == fresh.outcomes[0].metrics
        assert cold.computed_count == 1 and warm.computed_count == 1
