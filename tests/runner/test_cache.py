"""Tests for the content-addressed sweep result cache."""

import dataclasses
import json

import pytest

from repro.runner import ApproachSpec, ResultCache, SweepPoint, WorkloadSpec
from repro.runner.cache import metrics_from_dict, metrics_to_dict
from repro.sim.metrics import SimulationMetrics


def make_point(**overrides) -> SweepPoint:
    fields = dict(
        workload=WorkloadSpec.of("multimedia"),
        approach=ApproachSpec.of("hybrid"),
        tile_count=8,
        seed=2005,
        iterations=100,
    )
    fields.update(overrides)
    return SweepPoint(**fields)


def make_metrics(**overrides) -> SimulationMetrics:
    fields = dict(
        approach="hybrid", workload="multimedia", tile_count=8,
        iterations=100, task_executions=250, total_ideal_time=1234.5,
        total_actual_time=1300.25, total_overhead=65.75, total_loads=400,
        total_reused=120, total_cancelled=30, total_initialization_loads=55,
        total_intertask_prefetches=44, total_scheduler_operations=900,
        total_reuse_operations=700, total_energy=4321.125,
    )
    fields.update(overrides)
    return SimulationMetrics(**fields)


class TestMetricsRoundTrip:
    def test_round_trip_is_exact(self):
        metrics = make_metrics()
        assert metrics_from_dict(metrics_to_dict(metrics)) == metrics

    def test_json_round_trip_is_exact(self):
        metrics = make_metrics()
        payload = json.loads(json.dumps(metrics_to_dict(metrics)))
        assert metrics_from_dict(payload) == metrics

    def test_missing_field_rejected(self):
        payload = metrics_to_dict(make_metrics())
        payload.pop("total_energy")
        with pytest.raises(ValueError):
            metrics_from_dict(payload)

    def test_extra_field_rejected(self):
        payload = metrics_to_dict(make_metrics())
        payload["bogus"] = 1
        with pytest.raises(ValueError):
            metrics_from_dict(payload)

    def test_wrong_type_rejected(self):
        payload = metrics_to_dict(make_metrics())
        payload["total_loads"] = "many"
        with pytest.raises(ValueError):
            metrics_from_dict(payload)
        payload = metrics_to_dict(make_metrics())
        payload["total_loads"] = 400.5  # int field silently becoming float
        with pytest.raises(ValueError):
            metrics_from_dict(payload)


class TestResultCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(make_point()) is None
        assert len(cache) == 0

    def test_store_then_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        point, metrics = make_point(), make_metrics()
        path = cache.store(point, metrics)
        assert path.exists()
        assert cache.load(point) == metrics
        assert len(cache) == 1

    def test_entries_are_keyed_by_point(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        assert cache.load(make_point(seed=7)) is None
        assert cache.load(make_point(tile_count=9)) is None
        assert cache.load(
            make_point(approach=ApproachSpec.of("run-time"))
        ) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.store(point, make_metrics())
        cache.path_for(point).write_text("{ not json at all")
        assert cache.load(point) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.store(point, make_metrics())
        path = cache.path_for(point)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(point) is None

    def test_stale_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.store(point, make_metrics())
        path = cache.path_for(point)
        entry = json.loads(path.read_text())
        entry["format"] = -1
        path.write_text(json.dumps(entry))
        assert cache.load(point) is None

    def test_tampered_point_payload_is_a_miss(self, tmp_path):
        """A key collision (or hand-edit) must never serve foreign metrics."""
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.store(point, make_metrics())
        path = cache.path_for(point)
        entry = json.loads(path.read_text())
        entry["point"]["seed"] = 999
        path.write_text(json.dumps(entry))
        assert cache.load(point) is None

    def test_partial_metrics_are_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.store(point, make_metrics())
        path = cache.path_for(point)
        entry = json.loads(path.read_text())
        del entry["metrics"]["total_energy"]
        path.write_text(json.dumps(entry))
        assert cache.load(point) is None

    def test_store_overwrites_corrupted_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        point, metrics = make_point(), make_metrics()
        cache.path_for(point).write_text("garbage")
        cache.store(point, metrics)
        assert cache.load(point) == metrics

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        cache.store(make_point(seed=1), make_metrics())
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_point(), make_metrics())
        leftovers = [p for p in cache.directory.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestMetricFieldTypes:
    """The field-type map behind ``metrics_from_dict`` validation.

    Regression guard for the ``dataclasses.Field.type == "int"`` string
    comparison: with real type objects as annotations (no future import),
    every numeric field silently degraded to ``str`` and every warm cache
    load became a miss.
    """

    def test_every_metrics_field_is_numeric_unless_genuinely_string(self):
        from repro.runner.cache import _METRIC_FIELDS

        genuine_strings = {"approach", "workload"}
        for name, expected in _METRIC_FIELDS.items():
            if name in genuine_strings:
                assert expected is str
            else:
                assert expected in (int, float), (
                    f"metrics field {name!r} resolved to "
                    f"{expected.__name__}; a str fallback here turns "
                    f"every warm cache load into a miss"
                )

    def test_resolution_handles_real_type_object_annotations(self):
        from repro.runner.cache import resolve_metric_field_types

        # This module has no ``from __future__ import annotations``, so
        # the dataclass below carries real type objects — the case the
        # old string comparison got wrong.
        @dataclasses.dataclass
        class Sample:
            count: int
            ratio: float
            label: str

        assert dataclasses.fields(Sample)[0].type is int
        assert resolve_metric_field_types(Sample) == {
            "count": int, "ratio": float, "label": str,
        }

    def test_resolution_handles_string_annotations(self):
        from repro.runner.cache import resolve_metric_field_types

        @dataclasses.dataclass
        class Sample:
            count: "int"
            ratio: "float"
            label: "str"

        assert resolve_metric_field_types(Sample) == {
            "count": int, "ratio": float, "label": str,
        }

    def test_exotic_annotations_fall_back_to_str(self):
        from repro.runner.cache import resolve_metric_field_types

        @dataclasses.dataclass
        class Sample:
            flag: bool
            note: bytes

        resolved = resolve_metric_field_types(Sample)
        assert resolved == {"flag": str, "note": str}
