"""Seed-ensemble driver: CI math and sweep aggregation."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ApproachSpec,
    SeedEnsemble,
    SweepEngine,
    SweepSpec,
    aggregate,
    t_quantile_95,
)


class TestStudentT:
    def test_table_values(self):
        assert t_quantile_95(1) == pytest.approx(12.706)
        assert t_quantile_95(9) == pytest.approx(2.262)
        assert t_quantile_95(30) == pytest.approx(2.042)
        assert t_quantile_95(40) == pytest.approx(2.021)

    def test_interpolation_past_the_dense_table(self):
        # True t_{0.975, 31} is 2.0395; a plain z fallback (1.96) would
        # under-cover by ~4 % right past the table edge.
        assert t_quantile_95(31) == pytest.approx(2.0395, abs=1e-3)
        assert t_quantile_95(80) == pytest.approx(1.990, abs=2e-3)
        assert t_quantile_95(1000) == pytest.approx(1.962, abs=2e-3)
        assert t_quantile_95(10**9) == pytest.approx(1.960, abs=1e-4)

    def test_rejects_zero_degrees_of_freedom(self):
        with pytest.raises(ConfigurationError):
            t_quantile_95(0)

    def test_monotone_decreasing(self):
        quantiles = [t_quantile_95(df) for df in range(1, 40)]
        assert quantiles == sorted(quantiles, reverse=True)


class TestAggregate:
    def test_known_sample(self):
        cell = aggregate([1.0, 2.0, 3.0])
        assert cell.mean == pytest.approx(2.0)
        assert cell.std == pytest.approx(1.0)
        assert cell.count == 3
        assert cell.ci_half_width == pytest.approx(4.303 / math.sqrt(3))
        assert cell.low == pytest.approx(2.0 - cell.ci_half_width)
        assert cell.high == pytest.approx(2.0 + cell.ci_half_width)
        assert (cell.minimum, cell.maximum) == (1.0, 3.0)

    def test_single_value_degenerates_to_zero_width(self):
        cell = aggregate([7.5])
        assert cell.mean == 7.5
        assert cell.ci_half_width == 0.0
        assert cell.count == 1

    def test_constant_sample_has_zero_width(self):
        cell = aggregate([4.0] * 10)
        assert cell.ci_half_width == 0.0

    def test_empty_sample_raises(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_interval_shrinks_with_sample_size(self):
        small = aggregate([1.0, 3.0])
        large = aggregate([1.0, 3.0] * 8)
        assert large.ci_half_width < small.ci_half_width


class TestSeedEnsemble:
    @pytest.fixture(scope="class")
    def spec(self) -> SweepSpec:
        return SweepSpec(
            workloads=("multimedia",),
            approaches=(ApproachSpec("run-time"),),
            tile_counts=(4, 5),
            seeds=(1, 2, 3),
            iterations=5,
        )

    @pytest.fixture(scope="class")
    def ensemble(self, spec):
        return SeedEnsemble(spec).run()

    def test_rejects_unknown_metric(self, spec):
        with pytest.raises(ConfigurationError):
            SeedEnsemble(spec, metric="no_such_metric")

    def test_accepts_fields_and_properties(self, spec):
        SeedEnsemble(spec, metric="total_energy")       # dataclass field
        SeedEnsemble(spec, metric="overhead_percent")   # property

    def test_cells_aggregate_over_seeds_only(self, spec, ensemble):
        assert len(ensemble.cells) == 2  # one per tile count
        for tiles in spec.tile_counts:
            cell = ensemble.cell("multimedia", "run-time", tiles)
            assert cell.count == len(spec.seeds)
            assert cell.minimum <= cell.mean <= cell.maximum

    def test_matches_manual_aggregation(self, spec, ensemble):
        sweep = SweepEngine().run(spec)
        values = [sweep.metrics_for(tile_count=4, seed=seed)
                  .overhead_percent for seed in spec.seeds]
        manual = aggregate(values)
        cell = ensemble.cell("multimedia", "run-time", 4)
        assert cell.mean == pytest.approx(manual.mean)
        assert cell.ci_half_width == pytest.approx(manual.ci_half_width)

    def test_curve_view_is_tile_sorted(self, ensemble):
        curve = ensemble.curve("multimedia", "run-time")
        assert list(curve) == [4, 5]

    def test_missing_cell_raises_with_inventory(self, ensemble):
        with pytest.raises(KeyError, match="available"):
            ensemble.cell("multimedia", "run-time", 99)

    def test_format_table_reports_mean_and_interval(self, ensemble):
        table = ensemble.format_table()
        assert "mean overhead_percent" in table
        assert "±" in table
        assert "run-time" in table

    def test_single_seed_renders_zero_width(self):
        spec = SweepSpec(workloads=("multimedia",),
                         approaches=(ApproachSpec("run-time"),),
                         tile_counts=(4,), seeds=(1,), iterations=5)
        ensemble = SeedEnsemble(spec).run()
        assert ensemble.cell("multimedia", "run-time", 4).ci_half_width == 0

    def test_rides_on_any_engine(self, spec, tmp_path, ensemble):
        """Cached/distributed engines drop in without changing the math."""
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             poll_interval=0.05, wait_timeout=60)
        distributed = SeedEnsemble(spec).run(engine)
        for key, cell in ensemble.cells.items():
            assert distributed.cells[key] == cell
