"""Tests for the sweep engine: determinism, parallelism, caching."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ApproachSpec,
    SweepEngine,
    SweepSpec,
    WorkloadSpec,
    parallel_map,
    run_group,
)
from repro.sim.approaches import HybridApproach, RunTimeApproach
from repro.sim.simulator import simulate, sweep_tile_counts
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

#: A deliberately small synthetic workload: cheap design-time exploration,
#: cheap iterations, but the full engine machinery is exercised.
SYNTH_OPTIONS = dict(task_count=2, subtasks_per_task=5, scenarios_per_task=2,
                     seed=3)
ITERATIONS = 15


def synth_spec(**overrides) -> SweepSpec:
    fields = dict(
        workloads=(WorkloadSpec.of("synthetic", **SYNTH_OPTIONS),),
        approaches=("run-time", "hybrid"),
        tile_counts=(4, 6),
        seeds=(11,),
        iterations=ITERATIONS,
    )
    fields.update(overrides)
    return SweepSpec(**fields)


def double(value: int) -> int:
    return value * 2


class TestParallelMap:
    def test_in_process(self):
        assert parallel_map(double, [1, 2, 3], max_workers=1) == [2, 4, 6]

    def test_on_processes_preserves_order(self):
        items = list(range(20))
        assert parallel_map(double, items, max_workers=4) == \
            [2 * item for item in items]

    def test_empty(self):
        assert parallel_map(double, [], max_workers=4) == []


class TestRunGroup:
    def test_rejects_mixed_groups(self):
        points = synth_spec().expand()  # two tile counts -> two groups
        with pytest.raises(ConfigurationError):
            run_group(points)

    def test_empty_group(self):
        assert run_group([]) == []


class TestDeterminism:
    @pytest.fixture(scope="class")
    def sequential(self):
        return SweepEngine(max_workers=1).run(synth_spec())

    def test_parallel_matches_sequential_exactly(self, sequential):
        """max_workers=4 produces bit-identical SimulationMetrics."""
        parallel = SweepEngine(max_workers=4).run(synth_spec())
        assert [o.metrics for o in parallel] == \
            [o.metrics for o in sequential]
        assert all(not o.from_cache for o in parallel)

    def test_engine_matches_direct_simulation(self, sequential):
        """Shared design-time exploration does not change any result."""
        workload = SyntheticWorkload(spec=SyntheticSpec(**SYNTH_OPTIONS))
        for outcome in sequential.outcomes:
            approach = {"run-time": RunTimeApproach,
                        "hybrid": HybridApproach}[outcome.point.approach.name]
            direct = simulate(workload, outcome.point.tile_count, approach(),
                              iterations=ITERATIONS, seed=11)
            assert direct.metrics == outcome.metrics

    def test_engine_matches_sweep_tile_counts(self, sequential):
        """The thin wrapper and the engine agree point for point."""
        legacy = sweep_tile_counts(
            SyntheticWorkload(spec=SyntheticSpec(**SYNTH_OPTIONS)),
            tile_counts=(4, 6),
            approaches=[RunTimeApproach(), HybridApproach()],
            iterations=ITERATIONS, seed=11,
        )
        assert legacy == sequential.by_approach()

    def test_sweep_tile_counts_runs_unregistered_name_collision(self):
        """A custom subclass sharing a registered name is still simulated.

        The wrapper routes registered instances through the engine and
        everything else through the direct loop; a subclass inheriting
        ``name = "run-time"`` must win the name slot when listed last,
        exactly as the pre-engine implementation behaved.
        """
        class TaggedRunTime(RunTimeApproach):
            prepared = 0

            def prepare(self, design_result, reconfiguration_latency):
                type(self).prepared += 1
                super().prepare(design_result, reconfiguration_latency)

        workload = SyntheticWorkload(spec=SyntheticSpec(**SYNTH_OPTIONS))
        results = sweep_tile_counts(
            workload, tile_counts=(4,),
            approaches=[RunTimeApproach(), TaggedRunTime()],
            iterations=5, seed=11,
        )
        assert set(results) == {"run-time"}
        # The subclass actually ran (once per tile count)...
        assert TaggedRunTime.prepared == 1
        # ...and, being last in the list, its metrics occupy the slot.
        direct = simulate(workload, 4, TaggedRunTime(),
                          iterations=5, seed=11)
        assert results["run-time"][4] == direct.metrics

    def test_rerun_is_identical(self, sequential):
        again = SweepEngine(max_workers=1).run(synth_spec())
        assert [o.metrics for o in again] == [o.metrics for o in sequential]


class TestCacheIntegration:
    def test_warm_cache_skips_simulation(self, tmp_path):
        spec = synth_spec()
        engine = SweepEngine(max_workers=1, cache_dir=tmp_path)
        cold = engine.run(spec)
        assert cold.computed_count == spec.point_count
        assert cold.cached_count == 0

        warm = SweepEngine(max_workers=1, cache_dir=tmp_path).run(spec)
        assert warm.computed_count == 0
        assert warm.cached_count == spec.point_count
        assert [o.metrics for o in warm] == [o.metrics for o in cold]

    def test_parallel_warm_cache(self, tmp_path):
        spec = synth_spec()
        cold = SweepEngine(max_workers=4, cache_dir=tmp_path).run(spec)
        warm = SweepEngine(max_workers=4, cache_dir=tmp_path).run(spec)
        assert warm.computed_count == 0
        assert [o.metrics for o in warm] == [o.metrics for o in cold]

    def test_changed_point_misses_the_cache(self, tmp_path):
        engine = SweepEngine(max_workers=1, cache_dir=tmp_path)
        engine.run(synth_spec())
        shifted_spec = synth_spec(seeds=(12,))
        shifted = engine.run(shifted_spec)
        # A different seed shares no cache entry with the warm sweep.
        assert shifted.cached_count == 0
        assert shifted.computed_count == shifted_spec.point_count

    def test_corrupted_entry_is_recomputed(self, tmp_path):
        spec = synth_spec(tile_counts=(4,))
        engine = SweepEngine(max_workers=1, cache_dir=tmp_path)
        cold = engine.run(spec)
        victim = cold.outcomes[0].point
        engine.cache.path_for(victim).write_text("{ definitely broken")

        recovered = SweepEngine(max_workers=1, cache_dir=tmp_path).run(spec)
        assert recovered.computed_count == 1
        assert recovered.cached_count == spec.point_count - 1
        assert [o.metrics for o in recovered] == \
            [o.metrics for o in cold]
        # The recomputation also repaired the entry on disk.
        followup = SweepEngine(max_workers=1, cache_dir=tmp_path).run(spec)
        assert followup.computed_count == 0


class TestEngineApi:
    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(max_workers=0)

    def test_duplicate_points_computed_once(self):
        points = synth_spec(tile_counts=(4,)).expand()
        result = SweepEngine(max_workers=1).run(points + points)
        assert len(result) == 2 * len(points)
        first, second = (result.outcomes[: len(points)],
                         result.outcomes[len(points):])
        # Duplicates resolve to the *same* outcome object: the point was
        # simulated once, not twice.
        for left, right in zip(first, second):
            assert left is right

    def test_duplicate_points_stored_once_in_cache(self, tmp_path):
        points = synth_spec(tile_counts=(4,)).expand()
        engine = SweepEngine(max_workers=1, cache_dir=tmp_path)
        result = engine.run(points + points)
        assert len(engine.cache) == len(points)
        warm = engine.run(points + points)
        assert warm.computed_count == 0
        assert [o.metrics for o in warm] == [o.metrics for o in result]

    def test_metrics_for_requires_unique_match(self):
        result = SweepEngine(max_workers=1).run(synth_spec(tile_counts=(4,)))
        single = result.metrics_for(approach="hybrid", tile_count=4)
        assert single.approach == "hybrid"
        with pytest.raises(KeyError):
            result.metrics_for(approach="hybrid", tile_count=99)
        with pytest.raises(KeyError):
            result.metrics_for()  # two approaches match

    def test_by_approach_shape(self):
        result = SweepEngine(max_workers=1).run(synth_spec())
        table = result.by_approach()
        assert set(table) == {"run-time", "hybrid"}
        assert set(table["hybrid"]) == {4, 6}


class TestRunGroupStoreLifecycle:
    def test_run_group_restores_previous_tt_binding(self, tmp_path):
        """A finished group must not leave its store bound to the
        process-global pool — later unrelated work in the same process
        would otherwise keep writing (and resurrect) a dead sweep's
        cache directory."""
        from repro.runner.engine import run_group
        from repro.scheduling.pool import (
            process_scheduler_pool,
            reset_process_scheduler_pool,
        )

        reset_process_scheduler_pool()
        try:
            points = synth_spec(tile_counts=(4,)).expand()
            group = [p for p in points if p.approach.name == "hybrid"]
            run_group(group, tt_dir=str(tmp_path / "ttables"))
            assert list((tmp_path / "ttables").glob("tt-*.json"))
            assert process_scheduler_pool().tt_store is None
        finally:
            reset_process_scheduler_pool()
