"""Distributed sweeps: claim-file protocol and multi-worker partitioning.

Two layers are pinned here.  The :class:`~repro.runner.claims
.ClaimDirectory` primitive — exclusive acquisition, heartbeat refresh,
stale takeover through the rename-tombstone dance and its race behaviour
— and the :class:`~repro.runner.engine.SweepEngine` ``distributed`` mode
built on it: N workers on one cache directory complete a spec with zero
duplicated points, pick up each other's results through the cache, take
over abandoned claims and fail loudly (instead of hanging) when the
worker holding a live claim never delivers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ApproachSpec,
    ClaimDirectory,
    ClaimHeartbeat,
    SweepEngine,
    SweepSpec,
)
from repro.scheduling.pool import reset_process_scheduler_pool

ITERATIONS = 5


@pytest.fixture(autouse=True)
def _fresh_process_pool():
    """Thread-shared global pool state must not leak across tests."""
    reset_process_scheduler_pool()
    yield
    reset_process_scheduler_pool()


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    """Two groups (two tile counts), two points each."""
    return SweepSpec(
        workloads=("multimedia",),
        approaches=(ApproachSpec("run-time"), ApproachSpec("no-prefetch")),
        tile_counts=(4, 5),
        seeds=(1,),
        iterations=ITERATIONS,
    )


@pytest.fixture(scope="module")
def reference_metrics(spec):
    return [outcome.metrics for outcome in SweepEngine().run(spec)]


class TestClaimDirectory:
    def test_exactly_one_acquirer(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        bob = ClaimDirectory(tmp_path, worker_id="bob")
        assert alice.acquire("group-1")
        assert not bob.acquire("group-1")
        assert not alice.acquire("group-1")  # not reentrant either
        assert bob.acquire("group-2")
        assert sorted(alice.held_keys()) == ["group-1", "group-2"]
        payload = json.loads(alice.path_for("group-1").read_text())
        assert payload["worker"] == "alice"

    def test_threaded_race_has_single_winner(self, tmp_path):
        winners = []
        barrier = threading.Barrier(8)

        def contend(index):
            claims = ClaimDirectory(tmp_path, worker_id=f"w{index}")
            barrier.wait(timeout=30)
            if claims.acquire("contested"):
                winners.append(index)

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(winners) == 1

    def test_fresh_claim_resists_takeover(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=60.0)
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=60.0)
        assert alice.acquire("group-1")
        assert not bob.acquire("group-1")
        assert bob.takeovers == 0

    def test_stale_claim_is_taken_over(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=10.0)
        assert alice.acquire("group-1")
        path = alice.path_for("group-1")
        stale = time.time() - 60.0
        os.utime(path, (stale, stale))
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        assert bob.acquire("group-1")
        assert bob.takeovers == 1
        assert json.loads(path.read_text())["worker"] == "bob"
        # No tombstone debris survives a clean takeover.
        assert not list(tmp_path.glob(".stale-*"))

    def test_refresh_defends_a_long_running_claim(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=10.0)
        assert alice.acquire("group-1")
        path = alice.path_for("group-1")
        stale = time.time() - 60.0
        os.utime(path, (stale, stale))
        assert alice.refresh("group-1")  # heartbeat bumps the mtime back
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        assert not bob.acquire("group-1")

    def test_refresh_of_vanished_claim_reports_loss(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        assert alice.acquire("group-1")
        alice.release("group-1")
        assert not alice.refresh("group-1")

    def test_clear_removes_claims_and_tombstones(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w")
        claims.acquire("a")
        claims.acquire("b")
        (tmp_path / ".stale-x-w-1").write_text("{}")
        assert claims.clear() == 3
        assert claims.held_keys() == []


class TestClaimKeys:
    def test_same_spec_same_keys_across_workers(self, spec):
        groups = SweepEngine._group(spec.expand())
        again = SweepEngine._group(spec.expand())
        keys = [SweepEngine.group_claim_key(group) for group in groups]
        assert keys == [SweepEngine.group_claim_key(group)
                        for group in again]
        assert len(set(keys)) == len(keys)  # distinct groups, distinct keys

    def test_different_spec_never_false_shares(self, spec):
        from dataclasses import replace

        other = replace(spec, iterations=spec.iterations + 1)
        ours = {SweepEngine.group_claim_key(group)
                for group in SweepEngine._group(spec.expand())}
        theirs = {SweepEngine.group_claim_key(group)
                  for group in SweepEngine._group(other.expand())}
        assert not ours & theirs


class TestDistributedEngine:
    def test_requires_a_cache_directory(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(distributed=True)

    def test_single_worker_completes_and_rerun_is_cached(self, tmp_path,
                                                         spec,
                                                         reference_metrics):
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics
        assert len(list((tmp_path / "claims").glob("*.claim"))) == 2
        rerun = SweepEngine(cache_dir=tmp_path, distributed=True,
                            poll_interval=0.05, wait_timeout=60).run(spec)
        assert rerun.cached_count == spec.point_count
        assert [o.metrics for o in rerun] == reference_metrics

    def test_distributed_worker_uses_its_process_pool(self, tmp_path, spec,
                                                      reference_metrics):
        """Claimed groups run through the normal executor: max_workers
        applies inside a distributed worker too (and results stay
        bit-identical through the process boundary)."""
        engine = SweepEngine(max_workers=2, cache_dir=tmp_path,
                             distributed=True, poll_interval=0.05,
                             wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics

    def test_two_workers_partition_without_duplicates(self, tmp_path, spec,
                                                      reference_metrics):
        """The acceptance criterion: N workers, zero duplicated points."""
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                                     worker_id=name, poll_interval=0.05,
                                     wait_timeout=120)
                barrier.wait(timeout=30)
                results[name] = engine.run(spec)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((name, exc))

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("alice", "bob")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors
        assert set(results) == {"alice", "bob"}
        # Every worker sees the complete, bit-identical sweep...
        for result in results.values():
            assert [o.metrics for o in result] == reference_metrics
        # ...and every point was simulated exactly once across the fleet.
        computed = sum(result.computed_count for result in results.values())
        assert computed == spec.point_count

    def test_stale_claim_takeover_completes_the_sweep(self, tmp_path, spec,
                                                      reference_metrics):
        """A crashed worker's abandoned claim does not strand its group."""
        groups = SweepEngine._group(spec.expand())
        claims = ClaimDirectory(tmp_path / "claims", worker_id="crashed")
        for group in groups:
            key = SweepEngine.group_claim_key(group)
            assert claims.acquire(key)
            path = claims.path_for(key)
            stale = time.time() - 3600.0
            os.utime(path, (stale, stale))
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             worker_id="survivor", claim_ttl=5.0,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics

    def test_live_claim_with_no_results_times_out_loudly(self, tmp_path,
                                                         spec):
        """A held claim whose worker never delivers must raise, not hang."""
        groups = SweepEngine._group(spec.expand())
        claims = ClaimDirectory(tmp_path / "claims", worker_id="zombie")
        for group in groups:
            assert claims.acquire(SweepEngine.group_claim_key(group))
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             worker_id="waiter", claim_ttl=3600.0,
                             poll_interval=0.05, wait_timeout=0.5)
        with pytest.raises(ConfigurationError, match="stalled"):
            engine.run(spec)

    def test_partial_crash_recomputes_only_missing_points(self, tmp_path,
                                                          spec,
                                                          reference_metrics):
        """Takeover resumes a half-finished group from the cache."""
        # A non-distributed run populates everything; drop one point's
        # result to model a worker that died mid-group.
        SweepEngine(cache_dir=tmp_path).run(spec)
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == spec.point_count
        entries[0].unlink()
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == 1  # only the missing point reran
        assert [o.metrics for o in result] == reference_metrics


class TestAcquireRetry:
    """The vanished-claim window between a failed create and the stat."""

    def test_acquire_retries_once_when_claim_vanishes(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        assert alice.acquire("group-1")
        bob = ClaimDirectory(tmp_path, worker_id="bob")

        # Model the race: the claim exists during bob's exclusive-create
        # attempt but is released before his staleness stat lands.
        def vanishing_stat(name):
            alice.release("group-1")
            return None

        bob.backend.stat = vanishing_stat
        assert bob.acquire("group-1")
        assert bob.claims_acquired == 1
        assert bob.claims_lost == 0
        assert bob.takeovers == 0  # a retry is not a takeover

    def test_acquire_reports_loss_when_retry_also_fails(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        assert alice.acquire("group-1")
        bob = ClaimDirectory(tmp_path, worker_id="bob")

        # The claim vanishes mid-check but a third worker re-creates it
        # before bob's retry: both creations fail, bob records a loss.
        def contended_stat(name):
            alice.release("group-1")
            assert ClaimDirectory(tmp_path, worker_id="carol"
                                  ).acquire("group-1")
            return None

        bob.backend.stat = contended_stat
        assert not bob.acquire("group-1")
        assert bob.claims_lost == 1


class TestTombstoneSweeping:
    """Leaked takeover tombstones must not accumulate forever."""

    def _stale_claim(self, tmp_path, key="group-1", ttl=10.0):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=ttl)
        assert alice.acquire(key)
        stale = time.time() - 3600.0
        os.utime(alice.path_for(key), (stale, stale))

    def test_takeover_survives_a_failed_tombstone_delete(self, tmp_path):
        self._stale_claim(tmp_path)
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        real_delete = bob.backend.delete

        def failing_delete(name):
            if name.startswith(".stale-"):
                return False  # full disk / dropped permissions
            return real_delete(name)

        bob.backend.delete = failing_delete
        assert bob.acquire("group-1")  # the takeover itself still works
        assert bob.takeovers == 1
        leaked = list(tmp_path.glob(".stale-*"))
        assert len(leaked) == 1  # ...but the tombstone leaked

        # The regression this pins: any later directory scan reaps it.
        carol = ClaimDirectory(tmp_path, worker_id="carol", ttl=10.0)
        assert carol.held_keys() == ["group-1"]
        assert carol.tombstones_swept == 1
        assert not list(tmp_path.glob(".stale-*"))

    def test_tombstones_are_born_expired(self, tmp_path):
        """The rename preserves the stale claim's frozen mtime, so a
        leaked tombstone is sweepable immediately — no live takeover
        dance ever owns a tombstone older than the TTL."""
        self._stale_claim(tmp_path)
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        bob.backend.delete = lambda name: False  # leak everything
        bob.acquire("group-1")
        leaked = list(tmp_path.glob(".stale-*"))
        assert len(leaked) == 1
        age = time.time() - leaked[0].stat().st_mtime
        assert age > bob.ttl

    def test_fresh_tombstone_is_left_alone(self, tmp_path):
        """Age-gating the sweep keeps it safe even for hand-made or
        clock-skewed tombstones that *do* look recent."""
        claims = ClaimDirectory(tmp_path, worker_id="w", ttl=10.0)
        (tmp_path / ".stale-x-other-1").write_text("{}")
        assert claims.sweep_tombstones() == 0
        assert (tmp_path / ".stale-x-other-1").exists()


class TestClockSkew:
    """Shared directories mix the local clock with backend mtimes; the
    staleness math must clamp negative ages to zero so a writer whose
    clock runs ahead (an mtime in *our* future) reads as perfectly fresh
    — never as negative-aged, never as stale."""

    def _skew_forward(self, path, seconds=3600.0):
        ahead = time.time() + seconds
        os.utime(path, (ahead, ahead))

    def test_future_mtime_claim_has_age_zero(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w1", ttl=5.0)
        assert claims.acquire("group")
        self._skew_forward(claims.path_for("group"))
        age = claims._age(claims.name_for("group"))
        assert age == 0.0  # clamped: never negative
        assert not claims._is_stale(claims.name_for("group"))

    def test_future_mtime_claim_is_never_taken_over(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w1", ttl=5.0)
        assert claims.acquire("group")
        self._skew_forward(claims.path_for("group"))
        rival = ClaimDirectory(tmp_path, worker_id="w2", ttl=5.0)
        assert not rival.acquire("group")
        assert rival.takeovers == 0
        assert rival.claims_lost == 1
        assert rival.held_keys() == ["group"]

    def test_future_mtime_tombstone_survives_the_sweep(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w1", ttl=5.0)
        tombstone = tmp_path / ".stale-group-other-1"
        tombstone.write_text("{}")
        self._skew_forward(tombstone)
        assert claims.sweep_tombstones() == 0
        assert tombstone.exists()

    def test_skew_tolerance_is_documented(self):
        """The contract the fix pins: the claims-protocol docstring must
        spell out how much absolute clock skew the TTL absorbs."""
        import repro.runner.claims as claims_mod
        assert "skew" in claims_mod.__doc__.lower()


class TestHeartbeat:
    @pytest.mark.parametrize("ttl", [0.5, 2.0, 30.0])
    def test_refresh_always_restores_freshness(self, tmp_path, ttl):
        """Property: after refresh(), a claim is never stale — whatever
        the TTL and however far the mtime had drifted."""
        claims = ClaimDirectory(tmp_path, worker_id="w", ttl=ttl)
        assert claims.acquire("k")
        name = claims.name_for("k")
        for age_factor in (0.5, 1.5, 100.0):
            stale = time.time() - ttl * age_factor
            os.utime(claims.path_for("k"), (stale, stale))
            assert claims.refresh("k")
            assert not claims._is_stale(name)

    def test_heartbeat_defends_claim_under_subsecond_ttl(self, tmp_path):
        """A held claim survives a TTL far shorter than the hold time."""
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=0.5)
        assert alice.acquire("group-1")
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=0.5)
        with alice.heartbeat(["group-1"]) as beat:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                assert not bob.acquire("group-1")
                time.sleep(0.1)
        assert beat.beats >= 2
        # Once the holder stops beating, the claim goes stale within one
        # TTL and any challenger may take it over.
        time.sleep(0.7)
        assert bob.acquire("group-1")
        assert bob.takeovers == 1

    def test_heartbeat_without_keys_is_inert(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w")
        beat = claims.heartbeat([]).start()
        assert beat._thread is None
        beat.stop()  # idempotent no-op

    def test_heartbeat_interval_defaults_to_a_third_of_ttl(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w", ttl=9.0)
        assert claims.heartbeat(["k"]).interval == pytest.approx(3.0)
        with pytest.raises(ValueError):
            ClaimHeartbeat(claims, ["k"], interval=0.0)

    def test_group_claim_is_picklable_and_beats(self, tmp_path):
        """The worker-side heartbeat handle survives the pool boundary."""
        import pickle

        from repro.runner import GroupClaim

        holder = ClaimDirectory(tmp_path, worker_id="w", ttl=0.5)
        assert holder.acquire("g")
        claim = GroupClaim(directory=str(tmp_path), key="g",
                           worker_id="w", ttl=0.5)
        clone = pickle.loads(pickle.dumps(claim))
        assert clone == claim
        challenger = ClaimDirectory(tmp_path, worker_id="x", ttl=0.5)
        with clone.heartbeat():
            time.sleep(1.2)
            assert not challenger.acquire("g")


class TestSubRuntimeTtl:
    def test_ttl_below_group_runtime_never_duplicates(self, tmp_path, spec,
                                                      reference_metrics,
                                                      monkeypatch):
        """The acceptance criterion behind the heartbeat tentpole: a
        claim TTL far below the group runtime must not cause takeovers
        (= duplicated work) while the holders are alive and beating."""
        import repro.runner.engine as engine_mod

        real_explore = engine_mod.explore_platform

        def slow_explore(workload_spec, tile_count, exploration_dir=None):
            time.sleep(1.2)  # ~3x the 0.4s claim TTL below
            return real_explore(workload_spec, tile_count, exploration_dir)

        monkeypatch.setattr(engine_mod, "explore_platform", slow_explore)
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                                     worker_id=name, claim_ttl=0.4,
                                     poll_interval=0.05, wait_timeout=120)
                barrier.wait(timeout=30)
                results[name] = engine.run(spec)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((name, exc))

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("alice", "bob")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors
        for result in results.values():
            assert [o.metrics for o in result] == reference_metrics
        # Without heartbeats each 1.2s+ group would be "stale" twice over
        # under a 0.4s TTL and get recomputed; with them, every point is
        # simulated exactly once across the fleet.
        computed = sum(result.computed_count for result in results.values())
        assert computed == spec.point_count


@pytest.mark.slow
class TestCrashTakeover:
    def test_sigkilled_worker_is_taken_over_quickly(self, tmp_path, spec,
                                                    reference_metrics):
        """End-to-end crash drill: SIGKILL a worker mid-group; a survivor
        with a sub-runtime TTL re-claims and completes the sweep."""
        import subprocess
        import sys

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        victim_script = "\n".join([
            "import sys, time",
            "import repro.runner.engine as engine_mod",
            "real = engine_mod.explore_platform",
            "def stuck(workload_spec, tile_count, exploration_dir=None):",
            "    time.sleep(600)",
            "    return real(workload_spec, tile_count, exploration_dir)",
            "engine_mod.explore_platform = stuck",
            "from repro.runner import ApproachSpec, SweepEngine, SweepSpec",
            "spec = SweepSpec(workloads=('multimedia',),",
            "                 approaches=(ApproachSpec('run-time'),",
            "                             ApproachSpec('no-prefetch')),",
            f"                 tile_counts=(4, 5), seeds=(1,),",
            f"                 iterations={ITERATIONS})",
            "SweepEngine(cache_dir=sys.argv[1], distributed=True,",
            "            worker_id='victim', claim_ttl=1.0,",
            "            poll_interval=0.05, wait_timeout=600).run(spec)",
        ])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        victim = subprocess.Popen(
            [sys.executable, "-c", victim_script, str(tmp_path)], env=env
        )
        claim_dir = tmp_path / "claims"
        try:
            deadline = time.monotonic() + 60.0
            while not list(claim_dir.glob("*.claim")):
                assert victim.poll() is None, "victim died before claiming"
                assert time.monotonic() < deadline, "victim never claimed"
                time.sleep(0.05)
        finally:
            victim.kill()  # SIGKILL: heartbeats stop, mtime freezes
            victim.wait(timeout=30)

        killed_at = time.monotonic()
        survivor = SweepEngine(cache_dir=tmp_path, distributed=True,
                               worker_id="survivor", claim_ttl=1.0,
                               poll_interval=0.05, wait_timeout=60)
        result = survivor.run(spec)
        elapsed = time.monotonic() - killed_at
        # The victim was stuck before simulating anything, so the
        # survivor computes the entire spec — including the group it had
        # to take over from the corpse.
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics
        claims = ClaimDirectory(claim_dir, worker_id="inspector", ttl=1.0)
        takeover = json.loads(claims.path_for(
            SweepEngine.group_claim_key(
                SweepEngine._group(spec.expand())[0])).read_text())
        assert takeover["worker"] == "survivor"
        # Takeover latency is ~2x claim_ttl plus compute time, not the
        # 600s the victim would have held the claim for; the generous
        # bound only guards against the stale-wait pathology.
        assert elapsed < 30.0
