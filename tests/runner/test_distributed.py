"""Distributed sweeps: claim-file protocol and multi-worker partitioning.

Two layers are pinned here.  The :class:`~repro.runner.claims
.ClaimDirectory` primitive — exclusive acquisition, heartbeat refresh,
stale takeover through the rename-tombstone dance and its race behaviour
— and the :class:`~repro.runner.engine.SweepEngine` ``distributed`` mode
built on it: N workers on one cache directory complete a spec with zero
duplicated points, pick up each other's results through the cache, take
over abandoned claims and fail loudly (instead of hanging) when the
worker holding a live claim never delivers.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ApproachSpec,
    ClaimDirectory,
    SweepEngine,
    SweepSpec,
)
from repro.scheduling.pool import reset_process_scheduler_pool

ITERATIONS = 5


@pytest.fixture(autouse=True)
def _fresh_process_pool():
    """Thread-shared global pool state must not leak across tests."""
    reset_process_scheduler_pool()
    yield
    reset_process_scheduler_pool()


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    """Two groups (two tile counts), two points each."""
    return SweepSpec(
        workloads=("multimedia",),
        approaches=(ApproachSpec("run-time"), ApproachSpec("no-prefetch")),
        tile_counts=(4, 5),
        seeds=(1,),
        iterations=ITERATIONS,
    )


@pytest.fixture(scope="module")
def reference_metrics(spec):
    return [outcome.metrics for outcome in SweepEngine().run(spec)]


class TestClaimDirectory:
    def test_exactly_one_acquirer(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        bob = ClaimDirectory(tmp_path, worker_id="bob")
        assert alice.acquire("group-1")
        assert not bob.acquire("group-1")
        assert not alice.acquire("group-1")  # not reentrant either
        assert bob.acquire("group-2")
        assert sorted(alice.held_keys()) == ["group-1", "group-2"]
        payload = json.loads(alice.path_for("group-1").read_text())
        assert payload["worker"] == "alice"

    def test_threaded_race_has_single_winner(self, tmp_path):
        winners = []
        barrier = threading.Barrier(8)

        def contend(index):
            claims = ClaimDirectory(tmp_path, worker_id=f"w{index}")
            barrier.wait(timeout=30)
            if claims.acquire("contested"):
                winners.append(index)

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(winners) == 1

    def test_fresh_claim_resists_takeover(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=60.0)
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=60.0)
        assert alice.acquire("group-1")
        assert not bob.acquire("group-1")
        assert bob.takeovers == 0

    def test_stale_claim_is_taken_over(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=10.0)
        assert alice.acquire("group-1")
        path = alice.path_for("group-1")
        stale = time.time() - 60.0
        os.utime(path, (stale, stale))
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        assert bob.acquire("group-1")
        assert bob.takeovers == 1
        assert json.loads(path.read_text())["worker"] == "bob"
        # No tombstone debris survives a clean takeover.
        assert not list(tmp_path.glob(".stale-*"))

    def test_refresh_defends_a_long_running_claim(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice", ttl=10.0)
        assert alice.acquire("group-1")
        path = alice.path_for("group-1")
        stale = time.time() - 60.0
        os.utime(path, (stale, stale))
        assert alice.refresh("group-1")  # heartbeat bumps the mtime back
        bob = ClaimDirectory(tmp_path, worker_id="bob", ttl=10.0)
        assert not bob.acquire("group-1")

    def test_refresh_of_vanished_claim_reports_loss(self, tmp_path):
        alice = ClaimDirectory(tmp_path, worker_id="alice")
        assert alice.acquire("group-1")
        alice.release("group-1")
        assert not alice.refresh("group-1")

    def test_clear_removes_claims_and_tombstones(self, tmp_path):
        claims = ClaimDirectory(tmp_path, worker_id="w")
        claims.acquire("a")
        claims.acquire("b")
        (tmp_path / ".stale-x-w-1").write_text("{}")
        assert claims.clear() == 3
        assert claims.held_keys() == []


class TestClaimKeys:
    def test_same_spec_same_keys_across_workers(self, spec):
        groups = SweepEngine._group(spec.expand())
        again = SweepEngine._group(spec.expand())
        keys = [SweepEngine.group_claim_key(group) for group in groups]
        assert keys == [SweepEngine.group_claim_key(group)
                        for group in again]
        assert len(set(keys)) == len(keys)  # distinct groups, distinct keys

    def test_different_spec_never_false_shares(self, spec):
        from dataclasses import replace

        other = replace(spec, iterations=spec.iterations + 1)
        ours = {SweepEngine.group_claim_key(group)
                for group in SweepEngine._group(spec.expand())}
        theirs = {SweepEngine.group_claim_key(group)
                  for group in SweepEngine._group(other.expand())}
        assert not ours & theirs


class TestDistributedEngine:
    def test_requires_a_cache_directory(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(distributed=True)

    def test_single_worker_completes_and_rerun_is_cached(self, tmp_path,
                                                         spec,
                                                         reference_metrics):
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics
        assert len(list((tmp_path / "claims").glob("*.claim"))) == 2
        rerun = SweepEngine(cache_dir=tmp_path, distributed=True,
                            poll_interval=0.05, wait_timeout=60).run(spec)
        assert rerun.cached_count == spec.point_count
        assert [o.metrics for o in rerun] == reference_metrics

    def test_distributed_worker_uses_its_process_pool(self, tmp_path, spec,
                                                      reference_metrics):
        """Claimed groups run through the normal executor: max_workers
        applies inside a distributed worker too (and results stay
        bit-identical through the process boundary)."""
        engine = SweepEngine(max_workers=2, cache_dir=tmp_path,
                             distributed=True, poll_interval=0.05,
                             wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics

    def test_two_workers_partition_without_duplicates(self, tmp_path, spec,
                                                      reference_metrics):
        """The acceptance criterion: N workers, zero duplicated points."""
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                                     worker_id=name, poll_interval=0.05,
                                     wait_timeout=120)
                barrier.wait(timeout=30)
                results[name] = engine.run(spec)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((name, exc))

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("alice", "bob")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors
        assert set(results) == {"alice", "bob"}
        # Every worker sees the complete, bit-identical sweep...
        for result in results.values():
            assert [o.metrics for o in result] == reference_metrics
        # ...and every point was simulated exactly once across the fleet.
        computed = sum(result.computed_count for result in results.values())
        assert computed == spec.point_count

    def test_stale_claim_takeover_completes_the_sweep(self, tmp_path, spec,
                                                      reference_metrics):
        """A crashed worker's abandoned claim does not strand its group."""
        groups = SweepEngine._group(spec.expand())
        claims = ClaimDirectory(tmp_path / "claims", worker_id="crashed")
        for group in groups:
            key = SweepEngine.group_claim_key(group)
            assert claims.acquire(key)
            path = claims.path_for(key)
            stale = time.time() - 3600.0
            os.utime(path, (stale, stale))
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             worker_id="survivor", claim_ttl=5.0,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == spec.point_count
        assert [o.metrics for o in result] == reference_metrics

    def test_live_claim_with_no_results_times_out_loudly(self, tmp_path,
                                                         spec):
        """A held claim whose worker never delivers must raise, not hang."""
        groups = SweepEngine._group(spec.expand())
        claims = ClaimDirectory(tmp_path / "claims", worker_id="zombie")
        for group in groups:
            assert claims.acquire(SweepEngine.group_claim_key(group))
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             worker_id="waiter", claim_ttl=3600.0,
                             poll_interval=0.05, wait_timeout=0.5)
        with pytest.raises(ConfigurationError, match="stalled"):
            engine.run(spec)

    def test_partial_crash_recomputes_only_missing_points(self, tmp_path,
                                                          spec,
                                                          reference_metrics):
        """Takeover resumes a half-finished group from the cache."""
        # A non-distributed run populates everything; drop one point's
        # result to model a worker that died mid-group.
        SweepEngine(cache_dir=tmp_path).run(spec)
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == spec.point_count
        entries[0].unlink()
        engine = SweepEngine(cache_dir=tmp_path, distributed=True,
                             poll_interval=0.05, wait_timeout=60)
        result = engine.run(spec)
        assert result.computed_count == 1  # only the missing point reran
        assert [o.metrics for o in result] == reference_metrics
