"""Poisoned-cache robustness: warm sweeps recompute, never crash.

The sweep caches promise that *no* on-disk state can take down a run:
truncated writes (a crashed process), stale format versions (an old
checkout sharing the cache directory) and concurrent writers (two sweeps
on one shared directory) must all be treated as misses, recomputed and
produce metrics bit-identical to a cold run.  The unit tests in
``test_cache.py``/``test_exploration_cache.py`` pin the loaders; these
tests pin the end-to-end behaviour of a warm :class:`SweepEngine` run on
top of a damaged directory.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.runner import ApproachSpec, ResultCache, SweepEngine, SweepSpec
from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    EXPLORATION_FORMAT_VERSION,
    ExplorationCache,
)


ITERATIONS = 5


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(
        workloads=("multimedia",),
        approaches=(ApproachSpec("run-time"),),
        tile_counts=(4,),
        seeds=(1,),
        iterations=ITERATIONS,
    )


@pytest.fixture(scope="module")
def reference_metrics(spec):
    """Metrics of a cache-less run: the bit-exact recompute target."""
    return SweepEngine().run(spec).outcomes[0].metrics


def run_warm(cache_dir: Path, spec: SweepSpec):
    return SweepEngine(cache_dir=cache_dir).run(spec)


def seed_cache(cache_dir: Path, spec: SweepSpec) -> None:
    """Cold run that populates both result and exploration entries."""
    result = run_warm(cache_dir, spec)
    assert result.computed_count == 1
    assert list(cache_dir.glob("*.json")), "result entry expected"
    assert list((cache_dir / "explorations").glob("*.json")), \
        "exploration entry expected"


def entry_paths(cache_dir: Path):
    """Every cache entry (results + explorations) under the directory."""
    return sorted(cache_dir.glob("*.json")) + sorted(
        (cache_dir / "explorations").glob("*.json")
    )


class TestPoisonedWarmRuns:
    def test_truncated_entries_recompute(self, tmp_path, spec,
                                         reference_metrics):
        """Interrupted writers leave half an entry: recompute, identically."""
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        for path in entry_paths(cache_dir):
            content = path.read_text(encoding="utf-8")
            path.write_text(content[: len(content) // 2], encoding="utf-8")
        warm = run_warm(cache_dir, spec)
        assert warm.computed_count == 1  # nothing trusted, all recomputed
        assert warm.outcomes[0].metrics == reference_metrics

    def test_wrong_format_version_recomputes(self, tmp_path, spec,
                                             reference_metrics):
        """Entries from another format era are ignored, not trusted."""
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        for path in entry_paths(cache_dir):
            entry = json.loads(path.read_text(encoding="utf-8"))
            if "format" in entry:
                entry["format"] = CACHE_FORMAT_VERSION + 999
            if "request" in entry and isinstance(entry["request"], dict):
                entry["request"]["format"] = -1
            path.write_text(json.dumps(entry), encoding="utf-8")
        warm = run_warm(cache_dir, spec)
        assert warm.computed_count == 1
        assert warm.outcomes[0].metrics == reference_metrics

    def test_concurrent_writer_debris_is_harmless(self, tmp_path, spec,
                                                  reference_metrics):
        """Another sweep's in-flight temp files and foreign entries coexist.

        Atomic writes mean a concurrent writer is visible only as ``.tmp-``
        debris plus whole entries written under unrelated keys; neither may
        crash a warm run or leak into its results.
        """
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        # In-flight temp files from a concurrent (or crashed) writer.
        (cache_dir / ".tmp-concurrent.json").write_text(
            '{"format": 1, "point":', encoding="utf-8"
        )
        (cache_dir / "explorations" / ".tmp-other.json").write_text(
            "garbage", encoding="utf-8"
        )
        # A foreign entry whose recorded payload does not match its key
        # (e.g. a hash collision or a copy from another machine).
        victim = sorted(p for p in cache_dir.glob("*.json")
                        if not p.name.startswith(".tmp-"))[0]
        entry = json.loads(victim.read_text(encoding="utf-8"))
        entry["point"]["seed"] = 424242
        victim.write_text(json.dumps(entry), encoding="utf-8")
        warm = run_warm(cache_dir, spec)
        assert warm.computed_count == 1  # mismatched entry was not trusted
        assert warm.outcomes[0].metrics == reference_metrics

    def test_clean_warm_run_still_hits(self, tmp_path, spec,
                                       reference_metrics):
        """Control: an undamaged directory serves the cached result."""
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        warm = run_warm(cache_dir, spec)
        assert warm.computed_count == 0
        assert warm.cached_count == 1
        assert warm.outcomes[0].metrics == reference_metrics

    def test_poisoned_entries_are_healed_in_place(self, tmp_path, spec,
                                                  reference_metrics):
        """A recompute overwrites the damaged entry: the next run hits."""
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        for path in entry_paths(cache_dir):
            path.write_text("{ not json at all", encoding="utf-8")
        poisoned = run_warm(cache_dir, spec)
        assert poisoned.computed_count == 1
        healed = run_warm(cache_dir, spec)
        assert healed.computed_count == 0
        assert healed.outcomes[0].metrics == reference_metrics


class TestVersionSkewDowngrade:
    """Entries written by a *newer* code version (the downgrade path).

    A shared cache directory outlives any single checkout: after a roll
    back, this (older) code meets structurally valid entries stamped with
    format versions from its future.  Their payloads may encode semantics
    this version cannot reproduce, so they must be treated as misses —
    recomputed bit-identically, never crashed on, never half-trusted —
    and healed in place to this version's format.
    """

    @staticmethod
    def _stamp_future_versions(cache_dir: Path) -> int:
        """Rewrite every (valid) entry as if written by a newer release."""
        stamped = 0
        for path in entry_paths(cache_dir):
            entry = json.loads(path.read_text(encoding="utf-8"))
            if "format" in entry:                       # result entry
                entry["format"] = CACHE_FORMAT_VERSION + 1
            if "request" in entry and isinstance(entry["request"], dict):
                entry["request"]["format"] = EXPLORATION_FORMAT_VERSION + 1
            path.write_text(json.dumps(entry), encoding="utf-8")
            stamped += 1
        return stamped

    def test_future_entries_recompute_and_heal(self, tmp_path, spec,
                                               reference_metrics):
        cache_dir = tmp_path / "cache"
        seed_cache(cache_dir, spec)
        assert self._stamp_future_versions(cache_dir) >= 2
        downgraded = run_warm(cache_dir, spec)
        assert downgraded.computed_count == 1  # nothing from the future ran
        assert downgraded.outcomes[0].metrics == reference_metrics
        # The recompute overwrote the future entries with this version's.
        healed = run_warm(cache_dir, spec)
        assert healed.computed_count == 0
        assert healed.outcomes[0].metrics == reference_metrics

    def test_result_cache_load_rejects_newer_format(self, tmp_path, spec,
                                                    reference_metrics):
        """Unit level: a valid entry with a future format is a miss."""
        cache = ResultCache(tmp_path / "cache")
        point = spec.expand()[0]
        path = cache.store(point, reference_metrics)
        assert cache.load(point) == reference_metrics
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(point) is None

    def test_exploration_cache_load_rejects_newer_format(self, tmp_path,
                                                         spec):
        """Unit level: a future exploration request payload is a miss."""
        from repro.runner.engine import explore_platform
        from repro.tcm.design_time import exploration_to_dict

        workload_spec = spec.workloads[0]
        tile_count = spec.tile_counts[0]
        workload, platform, design = explore_platform(workload_spec,
                                                      tile_count)
        cache = ExplorationCache(tmp_path / "explorations")
        path = cache.store(workload_spec, tile_count, design)
        loaded = cache.load(workload_spec, tile_count, platform)
        assert exploration_to_dict(loaded) == exploration_to_dict(design)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["request"]["format"] = EXPLORATION_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(workload_spec, tile_count, platform) is None
