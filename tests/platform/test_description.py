"""Unit tests for platform descriptions and the energy model."""

import pytest

from repro.errors import PlatformError
from repro.platform.description import (
    DEFAULT_RECONFIGURATION_LATENCY_MS,
    EnergyModel,
    Platform,
    coarse_grain_platform,
    virtex2_platform,
)


class TestPlatform:
    def test_default_latency_is_4ms(self):
        assert DEFAULT_RECONFIGURATION_LATENCY_MS == pytest.approx(4.0)
        assert virtex2_platform().reconfiguration_latency == pytest.approx(4.0)

    def test_requires_at_least_one_tile(self):
        with pytest.raises(PlatformError):
            Platform(tile_count=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(PlatformError):
            Platform(tile_count=1, reconfiguration_latency=-1.0)

    def test_negative_isp_count_rejected(self):
        with pytest.raises(PlatformError):
            Platform(tile_count=1, isp_count=-1)

    def test_with_tiles(self):
        platform = virtex2_platform(tile_count=8)
        bigger = platform.with_tiles(16)
        assert bigger.tile_count == 16
        assert bigger.reconfiguration_latency == platform.reconfiguration_latency
        assert platform.tile_count == 8

    def test_with_latency(self):
        platform = virtex2_platform().with_latency(0.5)
        assert platform.reconfiguration_latency == pytest.approx(0.5)

    def test_new_controller_uses_platform_latency(self):
        platform = coarse_grain_platform(reconfiguration_latency=0.5)
        controller = platform.new_controller()
        record = controller.issue("cfg", tile=0)
        assert record.duration == pytest.approx(0.5)

    def test_new_tile_states(self):
        platform = virtex2_platform(tile_count=5)
        tiles = platform.new_tile_states()
        assert len(tiles) == 5
        assert all(tile.is_blank for tile in tiles)
        assert [tile.index for tile in tiles] == [0, 1, 2, 3, 4]

    def test_communication_latency_default_zero(self):
        platform = virtex2_platform(tile_count=8)
        assert platform.communication_latency(0, 5, data_size=100.0) == 0.0


class TestEnergyModel:
    def test_task_energy(self):
        model = EnergyModel(load_energy=10.0, execution_energy_per_ms=1.0,
                            idle_energy_per_ms=0.1)
        energy = model.task_energy(loads=3, busy_time=50.0, idle_tile_time=20.0)
        assert energy == pytest.approx(30.0 + 50.0 + 2.0)

    def test_negative_inputs_rejected(self):
        model = EnergyModel()
        with pytest.raises(PlatformError):
            model.task_energy(loads=-1, busy_time=0.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(PlatformError):
            EnergyModel(load_energy=-1.0)

    def test_more_loads_cost_more(self):
        model = EnergyModel()
        assert model.task_energy(5, 10.0) > model.task_energy(2, 10.0)
