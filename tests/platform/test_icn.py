"""Unit tests for the interconnection-network latency model."""

import pytest

from repro.errors import PlatformError
from repro.platform.icn import IcnModel, IcnTopology, mesh_icn, zero_latency_icn


class TestZeroLatency:
    def test_default_is_zero_latency(self):
        model = zero_latency_icn()
        assert model.is_zero_latency
        assert model.message_latency(0, 5, tile_count=8, data_size=100.0) == 0.0

    def test_same_tile_is_free(self):
        model = mesh_icn()
        assert model.message_latency(3, 3, tile_count=8) == 0.0


class TestHops:
    def test_crossbar_single_hop(self):
        model = IcnModel(topology=IcnTopology.CROSSBAR)
        assert model.hops(0, 7, tile_count=8) == 1

    def test_star_two_hops(self):
        model = IcnModel(topology=IcnTopology.STAR)
        assert model.hops(0, 7, tile_count=8) == 2

    def test_ring_wraps_around(self):
        model = IcnModel(topology=IcnTopology.RING)
        assert model.hops(0, 7, tile_count=8) == 1
        assert model.hops(0, 4, tile_count=8) == 4

    def test_mesh_manhattan_distance(self):
        model = IcnModel(topology=IcnTopology.MESH)
        # 9 tiles arranged 3x3: tile 0 is (0,0), tile 8 is (2,2).
        assert model.hops(0, 8, tile_count=9) == 4
        assert model.hops(0, 1, tile_count=9) == 1

    def test_out_of_range_tile(self):
        model = IcnModel()
        with pytest.raises(PlatformError):
            model.hops(0, 9, tile_count=8)

    def test_invalid_tile_count(self):
        model = IcnModel()
        with pytest.raises(PlatformError):
            model.hops(0, 1, tile_count=0)


class TestLatency:
    def test_latency_formula(self):
        model = IcnModel(topology=IcnTopology.RING, base_latency=0.1,
                         hop_latency=0.05, bandwidth=100.0)
        latency = model.message_latency(0, 2, tile_count=8, data_size=50.0)
        assert latency == pytest.approx(0.1 + 2 * 0.05 + 0.5)

    def test_zero_bandwidth_ignores_data_size(self):
        model = IcnModel(base_latency=0.1, hop_latency=0.0, bandwidth=0.0)
        assert model.message_latency(0, 1, tile_count=4, data_size=1e6) == \
            pytest.approx(0.1)

    def test_negative_data_size_rejected(self):
        model = mesh_icn()
        with pytest.raises(PlatformError):
            model.message_latency(0, 1, tile_count=4, data_size=-1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(PlatformError):
            IcnModel(base_latency=-0.1)
