"""Unit tests for the DRHW tile state."""

import pytest

from repro.errors import PlatformError
from repro.platform.tile import TileState


class TestTileState:
    def test_initial_state_is_blank(self):
        tile = TileState(index=0)
        assert tile.is_blank
        assert not tile.holds("anything")
        assert tile.busy_until == 0.0

    def test_negative_index_rejected(self):
        with pytest.raises(PlatformError):
            TileState(index=-1)

    def test_load_sets_configuration(self):
        tile = TileState(index=1)
        tile.load("dct", completion_time=4.0)
        assert tile.holds("dct")
        assert not tile.is_blank
        assert tile.loaded_at == pytest.approx(4.0)
        assert tile.use_count == 0

    def test_load_empty_configuration_rejected(self):
        tile = TileState(index=0)
        with pytest.raises(PlatformError):
            tile.load("", completion_time=1.0)

    def test_record_execution_updates_statistics(self):
        tile = TileState(index=0)
        tile.load("dct", completion_time=4.0)
        tile.record_execution(4.0, 12.0)
        assert tile.busy_until == pytest.approx(12.0)
        assert tile.use_count == 1
        assert tile.last_used_at == pytest.approx(4.0)

    def test_record_execution_rejects_negative_duration(self):
        tile = TileState(index=0)
        with pytest.raises(PlatformError):
            tile.record_execution(5.0, 4.0)

    def test_busy_until_never_decreases(self):
        tile = TileState(index=0)
        tile.record_execution(0.0, 10.0)
        tile.record_execution(2.0, 5.0)
        assert tile.busy_until == pytest.approx(10.0)

    def test_reload_resets_use_count(self):
        tile = TileState(index=0)
        tile.load("a", 1.0)
        tile.record_execution(1.0, 2.0)
        tile.load("b", 5.0)
        assert tile.use_count == 0
        assert tile.holds("b")

    def test_invalidate(self):
        tile = TileState(index=0)
        tile.load("a", 1.0)
        tile.invalidate()
        assert tile.is_blank
        assert tile.use_count == 0

    def test_copy_is_independent(self):
        tile = TileState(index=0)
        tile.load("a", 1.0)
        clone = tile.copy()
        clone.load("b", 2.0)
        assert tile.holds("a")
        assert clone.holds("b")
