"""Unit tests for the single-port reconfiguration controller."""

import pytest

from repro.errors import PlatformError
from repro.platform.reconfiguration import ReconfigurationController


class TestController:
    def test_negative_latency_rejected(self):
        with pytest.raises(PlatformError):
            ReconfigurationController(-1.0)

    def test_sequential_loads_never_overlap(self):
        controller = ReconfigurationController(4.0)
        first = controller.issue("a", tile=0)
        second = controller.issue("b", tile=1)
        third = controller.issue("c", tile=2, not_before=1.0)
        assert first.finish <= second.start
        assert second.finish <= third.start
        assert controller.load_count == 3

    def test_not_before_delays_start(self):
        controller = ReconfigurationController(4.0)
        record = controller.issue("a", tile=0, not_before=10.0)
        assert record.start == pytest.approx(10.0)
        assert record.finish == pytest.approx(14.0)

    def test_custom_latency(self):
        controller = ReconfigurationController(4.0)
        record = controller.issue("a", tile=0, latency=1.5)
        assert record.duration == pytest.approx(1.5)

    def test_negative_tile_rejected(self):
        controller = ReconfigurationController(4.0)
        with pytest.raises(PlatformError):
            controller.issue("a", tile=-1)

    def test_busy_time_and_utilization(self):
        controller = ReconfigurationController(4.0)
        controller.issue("a", tile=0)
        controller.issue("b", tile=1)
        assert controller.busy_time == pytest.approx(8.0)
        assert controller.utilization(16.0) == pytest.approx(0.5)
        assert controller.utilization(0.0) == 0.0

    def test_idle_window(self):
        controller = ReconfigurationController(4.0)
        controller.issue("a", tile=0)
        assert controller.idle_window(until=10.0) == pytest.approx(6.0)
        assert controller.idle_window(until=2.0) == 0.0

    def test_advance_to(self):
        controller = ReconfigurationController(4.0)
        controller.advance_to(20.0)
        record = controller.issue("a", tile=0)
        assert record.start == pytest.approx(20.0)
        # advance_to never rewinds.
        controller.advance_to(5.0)
        assert controller.free_at == pytest.approx(24.0)

    def test_reset(self):
        controller = ReconfigurationController(4.0)
        controller.issue("a", tile=0)
        controller.reset()
        assert controller.load_count == 0
        assert controller.free_at == 0.0

    def test_earliest_start(self):
        controller = ReconfigurationController(4.0)
        controller.issue("a", tile=0)
        assert controller.earliest_start() == pytest.approx(4.0)
        assert controller.earliest_start(not_before=10.0) == pytest.approx(10.0)
