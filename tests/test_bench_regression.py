"""Scheduler performance regression gate (benchmarks/check_regression.py).

The committed ``benchmarks/BENCH_schedulers.json`` baseline pins the
branch-and-bound engine's deterministic search counters (which must match
exactly — they drift only on semantic engine changes), its wall time
(>20 % slowdown budget) and the >=5x evaluated-leaf reduction versus the
seed engine.  Regenerate the baseline deliberately with
``python benchmarks/check_regression.py`` after an intended engine change.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", _BENCHMARKS / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_regression", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_scheduler_corpus_has_not_regressed():
    """Deterministic counters always gate; wall gates only off-CI.

    ``REPRO_CI=1`` (set by the CI workflow) switches to counters-only
    mode: shared runners are too noisy for the 20 % wall budgets, but
    every exact counter, makespan, reuse-rate and persisted-table gate
    still applies there.
    """
    module = _load_check_regression()
    failures = module.run_check(counters_only=module.ci_mode_from_env())
    assert not failures, "\n".join(failures)


@pytest.mark.slow
def test_leaf_reduction_versus_seed_engine():
    """The headline claim: >=5x fewer evaluated leaves than the seed.

    The seed engine only ever solved the Figure-6/7 graphs and the 9-load
    randoms; the 12/15-load corpus entries added for the memoized search
    have no seed counterpart, so the reduction is asserted over the
    problems ``seed_evaluations`` records.
    """
    import json

    module = _load_check_regression()
    baseline = json.loads(module.BASELINE_PATH.read_text(encoding="utf-8"))
    seed = baseline["seed_evaluations"]
    measured = module.measure(repeats=1)
    assert set(seed) <= set(measured)
    seed_total = sum(seed.values())
    measured_total = sum(entry["evaluations"]
                         for name, entry in measured.items() if name in seed)
    assert measured_total * module.LEAF_REDUCTION_FACTOR <= seed_total
